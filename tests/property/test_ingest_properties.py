"""Property-based tests of the ingestion layer's two core promises.

At-least-once delivery is only safe because the intake ledger makes it
*effectively-once*: for **any** event stream — duplicated, reordered,
redelivered in overlapping windows, chopped into arbitrary micro-batches —
the maintained lattice must equal a plain maintainer applying each distinct
event exactly once.  And micro-batch boundaries must be a pure function of
the event sequence and the injected clock, or replay after a crash would cut
different windows than the original run and the empty-batch dedup guarantee
would stop composing.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import FupOptions
from repro.core.maintenance import RuleMaintainer
from repro.core.session import MaintenanceSession
from repro.db.update import UpdateBatch
from repro.ingest import IngestEvent, MicroBatcher, TransactionIntake

from tests.ingest.conftest import BASE_DB

RELAXED = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Small item universe so random events actually build shared itemsets.
event_items = st.lists(
    st.integers(min_value=0, max_value=9), min_size=1, max_size=4
)

#: Distinct logical events: index → transaction (keys are derived from the
#: index, so distinctness is by construction).
distinct_events = st.lists(event_items, min_size=1, max_size=12)

#: A delivery schedule: each entry names a distinct event by index, possibly
#: repeating and reordering — exactly what an at-least-once producer emits.
def delivery_schedules(count: int):
    return st.lists(
        st.integers(min_value=0, max_value=count - 1), min_size=1, max_size=30
    )


def _events_for(rows: list[list[int]]) -> list[IngestEvent]:
    return [
        IngestEvent(key=f"ev-{index}", op="insert", items=tuple(sorted(set(row))))
        for index, row in enumerate(rows)
    ]


@RELAXED
@given(data=st.data(), rows=distinct_events, batch_size=st.integers(1, 7))
def test_noisy_delivery_equals_each_distinct_event_once(data, rows, batch_size):
    events = _events_for(rows)
    schedule = data.draw(delivery_schedules(len(events)))
    delivered = [events[index] for index in schedule]

    # Oracle: a plain maintainer applies each *delivered-at-least-once*
    # distinct event exactly once, in first-delivery order, dedup-free.
    seen: dict[str, IngestEvent] = {}
    for event in delivered:
        seen.setdefault(event.key, event)
    oracle = RuleMaintainer(0.2, 0.5, fup_options=FupOptions())
    oracle.initialise(BASE_DB)
    oracle.apply(UpdateBatch(insertions=tuple(e.items for e in seen.values())))

    with tempfile.TemporaryDirectory() as tmp:
        with MaintenanceSession.create(
            Path(tmp), BASE_DB, min_support=0.2, min_confidence=0.5
        ) as session:
            intake = TransactionIntake(session)
            batcher = MicroBatcher(max_events=batch_size)
            applied = duplicates = 0
            for event in delivered:
                for cut in batcher.offer(event):
                    report = intake.submit(cut)
                    applied += report.applied
                    duplicates += report.duplicates
            for cut in [batcher.flush()]:
                if cut:
                    report = intake.submit(cut)
                    applied += report.applied
                    duplicates += report.duplicates

            assert applied == len(seen)
            assert applied + duplicates == len(delivered)
            assert len(session.database) == len(oracle.database)
            assert (
                session.result.lattice.supports()
                == oracle.result.lattice.supports()
            )


class _ScriptedClock:
    """Monotonic clock replaying a fixed schedule (then holding its max)."""

    def __init__(self, ticks: list[float]) -> None:
        self._ticks = list(ticks)
        self._last = ticks[0] if ticks else 0.0

    def __call__(self) -> float:
        if self._ticks:
            self._last = self._ticks.pop(0)
        return self._last


#: Non-decreasing clock schedules, as cumulative sums of small deltas.
clock_deltas = st.lists(
    st.floats(min_value=0.0, max_value=3.0, allow_nan=False), min_size=1, max_size=40
)


def _cuts(events, *, batch_size, max_seconds, ticks):
    batcher = MicroBatcher(
        max_events=batch_size, max_seconds=max_seconds, clock=_ScriptedClock(ticks)
    )
    cuts = []
    for event in events:
        cuts.extend(tuple(e.key for e in cut) for cut in batcher.offer(event))
    tail = batcher.flush()
    if tail:
        cuts.append(tuple(e.key for e in tail))
    return cuts


@RELAXED
@given(
    rows=distinct_events,
    deltas=clock_deltas,
    batch_size=st.integers(1, 7),
    max_seconds=st.floats(min_value=0.1, max_value=2.0, allow_nan=False),
)
def test_batch_boundaries_are_deterministic_for_a_fixed_clock(
    rows, deltas, batch_size, max_seconds
):
    events = _events_for(rows)
    ticks, now = [], 0.0
    for delta in deltas:
        now += delta
        ticks.append(now)

    first = _cuts(events, batch_size=batch_size, max_seconds=max_seconds, ticks=ticks)
    second = _cuts(events, batch_size=batch_size, max_seconds=max_seconds, ticks=ticks)
    assert first == second  # identical clock ⇒ identical windows

    # Whatever the windows, batching loses nothing and reorders nothing.
    flattened = [key for cut in first for key in cut]
    assert flattened == [event.key for event in events]
    assert all(len(cut) <= batch_size for cut in first)

"""Property-based tests for the hash tree against a brute-force oracle."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.mining.hash_tree import HashTree

RELAXED = settings(
    max_examples=80,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

items = st.integers(min_value=0, max_value=25)


@st.composite
def candidates_and_transaction(draw):
    size = draw(st.integers(min_value=1, max_value=4))
    candidate_pool = draw(
        st.lists(
            st.lists(items, min_size=size, max_size=size, unique=True).map(
                lambda values: tuple(sorted(values))
            ),
            min_size=0,
            max_size=30,
            unique=True,
        )
    )
    transaction = tuple(sorted(draw(st.sets(items, min_size=0, max_size=15))))
    branching = draw(st.integers(min_value=2, max_value=9))
    leaf_capacity = draw(st.integers(min_value=1, max_value=6))
    return candidate_pool, transaction, branching, leaf_capacity


@RELAXED
@given(data=candidates_and_transaction())
def test_subsets_in_matches_brute_force(data):
    candidate_pool, transaction, branching, leaf_capacity = data
    tree = HashTree(candidate_pool, branching=branching, leaf_capacity=leaf_capacity)
    matches = tree.subsets_in(transaction)
    expected = {
        candidate for candidate in candidate_pool if set(candidate).issubset(transaction)
    }
    assert set(matches) == expected
    # Each match reported exactly once, so counting loops stay exact.
    assert len(matches) == len(expected)


@RELAXED
@given(data=candidates_and_transaction())
def test_tree_stores_every_candidate(data):
    candidate_pool, _, branching, leaf_capacity = data
    tree = HashTree(candidate_pool, branching=branching, leaf_capacity=leaf_capacity)
    assert set(tree) == set(candidate_pool)
    assert len(tree) == len(candidate_pool)
    for candidate in candidate_pool:
        assert tree.contains(candidate)

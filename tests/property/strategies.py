"""Hypothesis strategies shared by the property-based test modules."""

from __future__ import annotations

from hypothesis import strategies as st

from repro import TransactionDatabase

#: A single transaction: a small set of item ids drawn from a small universe,
#: so that random databases actually contain frequent itemsets.
transactions = st.lists(
    st.integers(min_value=0, max_value=11), min_size=1, max_size=6
)

#: A whole database: between 1 and 60 transactions.
transaction_lists = st.lists(transactions, min_size=1, max_size=60)

#: A (possibly empty) increment of up to 25 transactions.
increment_lists = st.lists(transactions, min_size=0, max_size=25)

#: Minimum-support thresholds spanning permissive to strict.
supports = st.sampled_from([0.1, 0.2, 0.25, 0.3, 0.5, 0.75])


def build_database(rows: list[list[int]], name: str = "") -> TransactionDatabase:
    """Create a database from raw hypothesis-generated rows."""
    return TransactionDatabase(rows, name=name)

"""Property-based tests of lattice invariants and rule soundness."""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import AprioriMiner, generate_rules
from repro.mining.result import required_support_count

from .strategies import build_database, supports, transaction_lists

RELAXED = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@RELAXED
@given(rows=transaction_lists, min_support=supports)
def test_downward_closure(rows, min_support):
    database = build_database(rows)
    result = AprioriMiner(min_support).mine(database)
    assert result.lattice.violates_downward_closure() == []


@RELAXED
@given(rows=transaction_lists, min_support=supports)
def test_every_large_itemset_meets_the_threshold(rows, min_support):
    database = build_database(rows)
    result = AprioriMiner(min_support).mine(database)
    threshold = required_support_count(min_support, len(database))
    for candidate, count in result.lattice.supports().items():
        assert count >= threshold
        assert count == database.count_itemset(candidate)


@RELAXED
@given(rows=transaction_lists, min_support=supports)
def test_no_large_itemset_is_missed_at_level_one(rows, min_support):
    # Completeness spot-check at level 1, where brute force is cheap.
    database = build_database(rows)
    result = AprioriMiner(min_support).mine(database)
    threshold = required_support_count(min_support, len(database))
    for item, count in database.item_counts().items():
        if count >= threshold:
            assert (item,) in result.lattice


@RELAXED
@given(
    rows=transaction_lists,
    min_support=supports,
    min_confidence=st.sampled_from([0.2, 0.5, 0.8, 1.0]),
)
def test_rule_soundness(rows, min_support, min_confidence):
    database = build_database(rows)
    result = AprioriMiner(min_support).mine(database)
    for rule in generate_rules(result.lattice, min_confidence):
        joint = database.count_itemset(rule.items)
        antecedent = database.count_itemset(rule.antecedent)
        assert rule.support_count == joint
        assert joint / antecedent >= min_confidence
        assert not set(rule.antecedent) & set(rule.consequent)
        # The rule's itemset is large, so its support meets the threshold.
        assert joint >= required_support_count(min_support, len(database))

"""Property tests: delta-maintained vertical index ≡ rebuilt from scratch.

The incremental maintenance of :class:`repro.db.vertical_index.VerticalIndex`
is only worth anything if it is *indistinguishable* from a rebuild.  These
tests drive a :class:`~repro.db.transaction_db.TransactionDatabase` (with its
index forced into existence up front, so every subsequent operation runs the
delta path) through random interleavings of ``append`` / ``extend`` /
``remove_batch`` / ``concatenate`` and assert, after **every** operation,
that the maintained index is bit-for-bit equal to
:func:`~repro.db.transaction_db.build_vertical_index` run from scratch over
the database's current transactions.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.transaction_db import build_vertical_index

from .strategies import build_database, transaction_lists, transactions

#: One random mutation/derivation step of the interleaving.
operations = st.one_of(
    st.tuples(st.just("append"), transactions),
    st.tuples(st.just("extend"), st.lists(transactions, max_size=8)),
    # remove_batch picks victims by *position in the current database*; the
    # indices are mapped to concrete transactions when the op is applied, so
    # the batch always mixes real hits (scattered arbitrarily) with misses.
    st.tuples(st.just("remove"), st.lists(st.integers(min_value=0, max_value=200), max_size=10)),
    st.tuples(st.just("concatenate"), st.lists(transactions, max_size=8)),
)


def assert_index_matches_scratch(database) -> None:
    """The maintained index must be bit-for-bit the from-scratch build."""
    maintained = dict(database.vertical())
    rebuilt = build_vertical_index(database.transactions())
    assert maintained == rebuilt
    assert database.vertical().size == len(database)


@settings(max_examples=60, deadline=None)
@given(initial=transaction_lists, ops=st.lists(operations, max_size=12))
def test_interleaved_mutations_keep_index_exact(initial, ops):
    database = build_database(initial)
    database.vertical()  # force the index so every op below is a delta update
    assert_index_matches_scratch(database)

    for name, payload in ops:
        if name == "append":
            database.append(payload)
        elif name == "extend":
            database.extend(payload)
        elif name == "remove":
            rows = database.transactions()
            batch = [list(rows[i % len(rows)]) for i in payload if rows] + [[97, 98, 99]]
            database.remove_batch(batch)
        else:  # concatenate: the result must inherit an exact derived index
            database = database.concatenate(build_database(payload))
        assert database.has_vertical_index
        assert_index_matches_scratch(database)


@settings(max_examples=40, deadline=None)
@given(rows=transaction_lists, start=st.integers(0, 70), stop=st.integers(0, 70))
def test_slice_derivation_is_exact(rows, start, stop):
    database = build_database(rows)
    database.vertical()
    window = database.slice(start, stop)
    assert dict(window.vertical()) == build_vertical_index(window.transactions())


@settings(max_examples=40, deadline=None)
@given(rows=transaction_lists, shards=st.integers(1, 9))
def test_partition_derivation_is_exact(rows, shards):
    database = build_database(rows)
    database.vertical()
    for shard in database.partition(shards):
        assert dict(shard.vertical()) == build_vertical_index(shard.transactions())


@settings(max_examples=40, deadline=None)
@given(rows=transaction_lists, more=transaction_lists)
def test_copy_then_diverge_keeps_both_exact(rows, more):
    database = build_database(rows)
    database.vertical()
    clone = database.copy()
    clone.extend(more)
    database.remove_batch(rows[: len(rows) // 2])
    assert_index_matches_scratch(database)
    assert_index_matches_scratch(clone)

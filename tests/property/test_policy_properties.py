"""Property tests for the maintenance-policy layer.

Four pinned behaviours, driven with random workloads:

* **window ≡ re-mine** — a sliding-window maintainer's lattice equals a
  from-scratch Apriori mine of the window contents after *every* batch, on
  all three counting backends and both bitmap kernels.  This is the PR's
  acceptance invariant: evictions riding the FUP2 deletion path must be
  indistinguishable from rebuilding the window.
* **decay re-threshold monotonicity** — under pure aging (no arrivals) the
  decayed database size can only shrink, so the effective support-count
  threshold is monotonically non-increasing: rules never get harder to
  keep merely because time passed.
* **top-k bound under growth** — a top-k maintainer's served rules are
  always the exact ``k``-prefix of the unbounded ranking, and never more
  than ``k``, no matter how the database grows.
* **skip-estimator soundness** — a maintainer with the DELI-style skip
  pre-check produces byte-identical supports and rules to a twin without
  it, for any insert-only stream; skipping is an optimisation, never an
  approximation.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AprioriMiner,
    FupOptions,
    RuleMaintainer,
    SkipEstimator,
    SlidingWindowPolicy,
    TimeDecayPolicy,
    TopKPolicy,
    TransactionDatabase,
    UpdateBatch,
)
from repro.kernels import numpy_available
from repro.mining.backends import BACKEND_NAMES

from .strategies import build_database, transactions

#: Small initial databases keep each example's repeated re-mines fast.
initial_databases = st.lists(transactions, min_size=4, max_size=16)

#: A stream of insert-only batches.
insert_streams = st.lists(
    st.lists(transactions, min_size=1, max_size=4), min_size=1, max_size=4
)

ENGINES = [("horizontal", None), ("vertical", "bigint"), ("partitioned", "bigint")] + (
    [("vertical", "numpy"), ("partitioned", "numpy")] if numpy_available() else []
)

assert set(backend for backend, _ in ENGINES[:3]) == set(BACKEND_NAMES)


@pytest.mark.parametrize(("backend", "kernel"), ENGINES)
@settings(max_examples=6, deadline=None)
@given(initial=initial_databases, stream=insert_streams, window=st.integers(4, 12))
def test_window_equals_remine_at_every_step(backend, kernel, initial, stream, window):
    maintainer = RuleMaintainer(
        0.25,
        0.5,
        fup_options=FupOptions(backend=backend, shards=2, kernel=kernel),
        policy=SlidingWindowPolicy(window),
    )
    maintainer.initialise(build_database(initial))
    for number, rows in enumerate([[]] + stream):  # [] covers the admit trim
        if rows:
            maintainer.apply(UpdateBatch.from_iterables(insertions=rows, label=f"b{number}"))
        assert len(maintainer.database) <= window
        remined = AprioriMiner(0.25).mine(
            TransactionDatabase(maintainer.database.transactions())
        )
        assert maintainer.result.lattice.supports() == remined.lattice.supports()


@settings(max_examples=25, deadline=None)
@given(
    half_life=st.sampled_from([1.0, 2.0, 4.0]),
    shape=st.lists(
        st.tuples(st.integers(0, 10), st.integers(1, 5)), min_size=1, max_size=6
    ),
    min_support=st.sampled_from([0.1, 0.25, 0.5]),
    steps=st.integers(1, 6),
)
def test_decay_threshold_is_monotone_under_pure_aging(half_life, shape, min_support, steps):
    policy = TimeDecayPolicy(half_life)
    segments = [[min(age, policy.horizon - 1), count] for age, count in shape]
    policy.restore_state({"segments": segments})
    database = TransactionDatabase([[1]] * sum(count for _, count in segments))

    threshold = policy.effective_threshold(min_support)
    for _ in range(steps):
        plan = policy.plan(UpdateBatch(label="age"), database)
        database.remove_batch(list(plan.evictions))
        policy.commit(plan)
        aged = policy.effective_threshold(min_support)
        assert aged <= threshold
        assert policy.decayed_size() >= 0
        threshold = aged


@settings(max_examples=10, deadline=None)
@given(initial=initial_databases, stream=insert_streams, k=st.integers(1, 8))
def test_topk_serves_the_exact_prefix_under_growth(initial, stream, k):
    bounded = RuleMaintainer(0.25, 0.5, policy=TopKPolicy(k))
    unbounded = RuleMaintainer(0.25, 0.5)
    bounded.initialise(build_database(initial))
    unbounded.initialise(build_database(initial))
    assert bounded.rules == unbounded.rules[:k]
    for number, rows in enumerate(stream):
        batch = UpdateBatch.from_iterables(insertions=rows, label=f"b{number}")
        bounded.apply(batch)
        unbounded.apply(batch)
        assert len(bounded.rules) <= k
        assert bounded.rules == unbounded.rules[:k]
        # The lattice itself stays exact — only the served list is cut.
        assert bounded.result.lattice.supports() == unbounded.result.lattice.supports()


@settings(max_examples=12, deadline=None)
@given(initial=initial_databases, stream=insert_streams)
def test_skip_estimator_never_changes_the_outcome(initial, stream):
    checked = RuleMaintainer(0.25, 0.5, skip_estimator=SkipEstimator(sample_size=4))
    plain = RuleMaintainer(0.25, 0.5)
    checked.initialise(build_database(initial))
    plain.initialise(build_database(initial))
    for number, rows in enumerate(stream):
        batch = UpdateBatch.from_iterables(insertions=rows, label=f"b{number}")
        checked.apply(batch)
        plain.apply(batch)
        assert checked.result.lattice.supports() == plain.result.lattice.supports()
        assert checked.rules == plain.rules
    stats = checked.skip_estimator.stats
    assert stats.rounds_checked == len(stream)
    assert stats.rounds_skipped + stats.rounds_forced == stats.rounds_checked

"""Hypothesis properties of the partitioned engine's executors.

The invariant: for any database, candidate pool and shard/worker
configuration, process-mode counting is bit-for-bit identical to thread-mode
counting and to the serial single-partition engines — including across
database mutations (which advance the shard fingerprints the per-worker
caches are keyed on).

The process-mode backends are module-scoped on purpose: the worker processes
and their shard caches survive across examples, so Hypothesis hammers the
cache/fingerprint bookkeeping (hundreds of distinct shard generations
through the same lanes), not just the happy path of a fresh pool.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import TransactionDatabase, make_backend
from repro.mining.backends import PartitionedBackend, VerticalBackend

from .strategies import build_database, increment_lists, transaction_lists

#: Candidate pools over the same small item universe as the databases.
candidate_pools = st.lists(
    st.lists(st.integers(min_value=0, max_value=13), min_size=1, max_size=4)
    .map(lambda items: tuple(sorted(set(items)))),
    min_size=0,
    max_size=12,
)

shard_counts = st.integers(min_value=1, max_value=5)

RELAXED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Shared pools: shards land on the same lanes for the whole module.
_PROCESS_HORIZONTAL = PartitionedBackend(shards=4, executor="processes")
_PROCESS_VERTICAL = PartitionedBackend(
    shards=4, inner=VerticalBackend(), executor="processes"
)
_PROCESS_CAPPED = PartitionedBackend(shards=5, executor="processes", workers=2)


def teardown_module() -> None:
    for backend in (_PROCESS_HORIZONTAL, _PROCESS_VERTICAL, _PROCESS_CAPPED):
        backend.close()


@given(rows=transaction_lists, pool=candidate_pools)
@RELAXED
def test_process_counts_equal_serial_and_threads(rows, pool):
    database = build_database(rows)
    expected = make_backend("horizontal").count_candidates(database, pool)
    assert make_backend("vertical").count_candidates(database, pool) == expected
    threaded = PartitionedBackend(shards=4, executor="threads")
    assert threaded.count_candidates(database, pool) == expected
    assert _PROCESS_HORIZONTAL.count_candidates(database, pool) == expected
    assert _PROCESS_VERTICAL.count_candidates(database, pool) == expected
    assert _PROCESS_CAPPED.count_candidates(database, pool) == expected


@given(rows=transaction_lists)
@RELAXED
def test_process_item_counts_equal_database(rows):
    database = build_database(rows)
    assert _PROCESS_HORIZONTAL.count_items(database) == database.item_counts()
    assert _PROCESS_CAPPED.count_items(database) == database.item_counts()


@given(
    rows=transaction_lists,
    increment=increment_lists,
    delete_count=st.integers(min_value=0, max_value=5),
    pool=candidate_pools,
    shards=shard_counts,
)
@RELAXED
def test_process_counts_track_mutations(rows, increment, delete_count, pool, shards):
    """Counting stays correct through extend/remove cycles on one backend.

    This is the maintenance-session shape: every mutation advances the shard
    fingerprints, so the worker caches must refresh exactly when the parent
    mirror says they will.
    """
    database = build_database(rows)
    fresh = PartitionedBackend(shards=shards, executor="threads")
    assert _PROCESS_HORIZONTAL.count_candidates(database, pool) == (
        fresh.count_candidates(database, pool)
    )
    database.extend(increment)
    assert _PROCESS_HORIZONTAL.count_candidates(database, pool) == (
        fresh.count_candidates(database, pool)
    )
    victims = database.transactions()[:delete_count]
    database.remove_batch(list(victims))
    expected = {
        candidate: database.count_itemset(candidate) for candidate in pool
    }
    assert _PROCESS_HORIZONTAL.count_candidates(database, pool) == expected


@given(rows=transaction_lists)
@RELAXED
def test_fingerprint_equals_content_equality(rows):
    database = build_database(rows)
    same = build_database(rows)
    assert database.fingerprint() == same.fingerprint()
    round_tripped = TransactionDatabase.from_shard_payload(database.shard_payload())
    assert round_tripped.fingerprint() == database.fingerprint()
    database.append([99])
    assert database.fingerprint() != same.fingerprint()

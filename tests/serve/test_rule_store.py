"""Unit tests for the lock-free rule store and its maintenance hook."""

from __future__ import annotations

import pytest

from repro import (
    RuleMaintainer,
    RuleStore,
    UpdateBatch,
)
from repro.errors import EmptyDatabaseError


@pytest.fixture
def maintainer(small_database):
    maintainer = RuleMaintainer(0.3, 0.5)
    maintainer.initialise(small_database)
    return maintainer


class TestEmptyStore:
    def test_snapshot_raises_until_published(self):
        store = RuleStore()
        assert not store.has_snapshot
        assert store.version is None
        assert store.publications == 0
        with pytest.raises(EmptyDatabaseError):
            store.snapshot()


class TestPublication:
    def test_publish_from_maintainer(self, maintainer):
        store = RuleStore()
        snapshot = store.publish_from(maintainer)
        assert store.snapshot() is snapshot
        assert snapshot.version == maintainer.sequence == 0
        assert snapshot.rules == tuple(maintainer.rules)
        assert snapshot.database_size == len(maintainer.database)

    def test_attach_publishes_current_state_immediately(self, maintainer):
        store = RuleStore()
        store.attach(maintainer)
        assert store.has_snapshot
        assert store.version == 0

    def test_attach_before_initialise_publishes_on_initialise(self, small_database):
        maintainer = RuleMaintainer(0.3, 0.5)
        store = RuleStore()
        store.attach(maintainer)
        assert not store.has_snapshot
        maintainer.initialise(small_database)
        assert store.version == 0

    def test_every_applied_batch_republishes(self, maintainer, small_increment):
        store = RuleStore()
        store.attach(maintainer)
        maintainer.add_transactions(list(small_increment), label="a")
        assert store.version == 1
        maintainer.remove_transactions([[1, 2, 3]], label="b")
        assert store.version == 2
        assert store.publications == 3  # attach + two batches

    def test_empty_batch_does_not_republish(self, maintainer):
        store = RuleStore()
        store.attach(maintainer)
        published = store.publications
        maintainer.apply(UpdateBatch())
        assert store.publications == published
        assert store.version == 0

    def test_snapshot_reflects_post_batch_state(self, maintainer, small_increment):
        store = RuleStore()
        store.attach(maintainer)
        maintainer.add_transactions(list(small_increment))
        snapshot = store.snapshot()
        assert snapshot.database_size == len(maintainer.database)
        assert snapshot.rules == tuple(maintainer.rules)
        assert snapshot.supports() == maintainer.result.lattice.supports()

    def test_old_snapshot_is_untouched_by_new_publication(self, maintainer, small_increment):
        """A reader holding the previous snapshot keeps a consistent view."""
        store = RuleStore()
        store.attach(maintainer)
        old = store.snapshot()
        old_rules = old.rules
        old_size = old.database_size
        maintainer.add_transactions(list(small_increment))
        assert store.snapshot() is not old
        assert old.rules == old_rules
        assert old.database_size == old_size
        assert old.version == 0


class TestListeners:
    def test_on_publish_fires_per_publication(self, maintainer, small_increment):
        store = RuleStore()
        seen = []
        store.on_publish(lambda snapshot: seen.append(snapshot.version))
        store.attach(maintainer)
        maintainer.add_transactions(list(small_increment))
        assert seen == [0, 1]

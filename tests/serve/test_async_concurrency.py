"""Async front end under concurrent load with interleaved publications.

The serving guarantees this module hammers:

* **Batch atomicity** — a batched ``POST /recommend`` is answered from one
  snapshot read, so a publication landing mid-batch must never split the
  response: every basket's recommendations must match the snapshot of the
  version the response claims.
* **Cache freshness** — the response cache is keyed by snapshot version and
  cleared on publish, so no response may ever pair version ``V`` with
  content computed from a different version (and after the last publish,
  responses must converge to the final version).
* **Rate-limit contract under load** — a limited client gets a 429 with a
  parseable ``Retry-After`` and is admitted again after waiting it out.

The expectation table is built from the published snapshots themselves: a
listener registered *before* the writer starts records every immutable
snapshot by version, and each response is checked against the recorded
snapshot of the version it claims — byte-level equality, not heuristics.
"""

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro import AsyncRuleServer, RuleMaintainer, RuleStore, TransactionDatabase

MIN_SUPPORT = 0.15
MIN_CONFIDENCE = 0.4
PUBLICATIONS = 8
CLIENT_THREADS = 4
BASKETS = ([1], [2], [1, 2], [2, 3], [1, 2, 3], [3, 4])
K = 4


@pytest.fixture
def stress_setup():
    """A maintainer-backed store, a snapshot registry, and a running server."""
    rows = [
        sorted({1 + (i % 4), 2 + (i % 3), 3 + (i % 5)})
        for i in range(120)
    ]
    maintainer = RuleMaintainer(MIN_SUPPORT, MIN_CONFIDENCE)
    maintainer.initialise(TransactionDatabase(rows, name="async-stress"))
    store = RuleStore()
    snapshots = {}
    # Registered before attach so version 0 and every later publication is
    # recorded; snapshots are immutable, so holding them is safe.
    store.on_publish(lambda snapshot: snapshots.setdefault(snapshot.version, snapshot))
    store.attach(maintainer)
    with AsyncRuleServer(store) as server:
        yield {
            "server": server,
            "store": store,
            "maintainer": maintainer,
            "snapshots": snapshots,
        }


def expected_payload(snapshot, basket: list[int]) -> list[dict]:
    return [entry.as_dict() for entry in snapshot.recommend(tuple(basket), k=K)]


class TestInterleavedPublications:
    def test_no_response_mixes_versions_and_cache_never_stale(self, stress_setup):
        server = stress_setup["server"]
        snapshots = stress_setup["snapshots"]
        maintainer = stress_setup["maintainer"]

        stop = threading.Event()
        failures: list[str] = []

        def check(version: int, basket: list[int], recommendations: list[dict]) -> None:
            snapshot = snapshots.get(version)
            if snapshot is None:
                failures.append(f"response claims unpublished version {version}")
                return
            if recommendations != expected_payload(snapshot, basket):
                failures.append(
                    f"version {version} basket {basket}: recommendations do not "
                    f"match that version's snapshot (stale cache or torn batch)"
                )

        def client(worker: int) -> None:
            connection = http.client.HTTPConnection(
                server.host, server.port, timeout=10
            )
            try:
                turn = worker
                while not stop.is_set():
                    if turn % 2 == 0:
                        # Batched POST: every basket must share one version.
                        body = json.dumps({"baskets": list(BASKETS), "k": K}).encode()
                        connection.request(
                            "POST", "/recommend", body=body,
                            headers={"Content-Type": "application/json"},
                        )
                        response = connection.getresponse()
                        payload = json.loads(response.read().decode("utf-8"))
                        if response.status != 200:
                            failures.append(f"batch POST -> {response.status}")
                            break
                        for entry in payload["results"]:
                            check(
                                payload["version"],
                                entry["basket"],
                                entry["recommendations"],
                            )
                    else:
                        basket = BASKETS[turn % len(BASKETS)]
                        target = ",".join(map(str, basket))
                        connection.request("GET", f"/recommend?basket={target}&k={K}")
                        response = connection.getresponse()
                        payload = json.loads(response.read().decode("utf-8"))
                        if response.status != 200:
                            failures.append(f"GET -> {response.status}")
                            break
                        check(payload["version"], payload["basket"], payload["recommendations"])
                    turn += 1
            except (OSError, http.client.HTTPException) as exc:
                failures.append(f"worker {worker} transport error: {exc!r}")
            finally:
                connection.close()

        threads = [
            threading.Thread(target=client, args=(worker,), name=f"hammer-{worker}")
            for worker in range(CLIENT_THREADS)
        ]
        for thread in threads:
            thread.start()
        # The writer publishes while the clients hammer.
        for index in range(PUBLICATIONS):
            maintainer.add_transactions(
                [[1 + index % 3, 2 + index % 4, 5], [2, 3 + index % 3]],
                label=f"live-{index}",
            )
            time.sleep(0.02)
        time.sleep(0.1)  # let clients observe the final version
        stop.set()
        for thread in threads:
            thread.join()

        assert not failures, failures[:5]
        assert len(snapshots) == PUBLICATIONS + 1

        # After the dust settles every response must be the final version,
        # and a repeat of it must be served from the (repopulated) cache.
        final = stress_setup["store"].snapshot()
        connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            for _ in range(2):
                connection.request("GET", f"/recommend?basket=1,2&k={K}")
                response = connection.getresponse()
                payload = json.loads(response.read().decode("utf-8"))
                assert payload["version"] == final.version
                assert payload["recommendations"] == expected_payload(final, [1, 2])
        finally:
            connection.close()
        cache = server.cache.stats()
        assert cache["invalidations"] >= PUBLICATIONS
        assert cache["hits"] >= 1


class TestRateLimitUnderLoad:
    def test_429_retry_after_is_parseable_and_sufficient(self, stress_setup):
        store = stress_setup["store"]
        with AsyncRuleServer(store, rate_limit=5.0, rate_burst=2.0) as server:
            connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
            try:
                limited = None
                for _ in range(10):
                    connection.request(
                        "GET", "/recommend?basket=1", headers={"X-Client-Id": "flood"}
                    )
                    response = connection.getresponse()
                    payload = json.loads(response.read().decode("utf-8"))
                    if response.status == 429:
                        limited = (dict(response.getheaders()), payload)
                        break
                assert limited is not None, "burst of 10 never hit the limiter"
                headers, payload = limited
                # The header is RFC delay-seconds (integral, >= 1); the body
                # carries the exact fractional wait.
                assert int(headers["Retry-After"]) >= 1
                exact = payload["retry_after_seconds"]
                assert 0 < exact <= 1.0
                time.sleep(exact + 0.05)
                connection.request(
                    "GET", "/recommend?basket=1", headers={"X-Client-Id": "flood"}
                )
                response = connection.getresponse()
                response.read()
                assert response.status == 200, "waiting out Retry-After must admit"
            finally:
                connection.close()

"""Tests for the asyncio front end (endpoints, cache, limits, lifecycle).

The concurrency-under-publication behaviour has its own module
(``test_async_concurrency``); this one covers the request/response contract
a single well-behaved (or misbehaved) client observes.
"""

from __future__ import annotations

import http.client
import json
import socket

import pytest

from repro import AsyncRuleServer, RuleMaintainer, RuleServer, RuleStore
from repro.serve.async_server import DEFAULT_MAX_CONNECTIONS


@pytest.fixture
def maintainer(small_database):
    maintainer = RuleMaintainer(0.3, 0.5)
    maintainer.initialise(small_database)
    return maintainer


@pytest.fixture
def attached_store(maintainer):
    store = RuleStore()
    store.attach(maintainer)
    return store


@pytest.fixture
def served(attached_store, maintainer):
    with AsyncRuleServer(attached_store) as server:
        yield {"server": server, "store": attached_store, "maintainer": maintainer}


def request_raw(
    server,
    method: str,
    path: str,
    *,
    body: bytes | None = None,
    headers: dict[str, str] | None = None,
    connection: http.client.HTTPConnection | None = None,
):
    """One request; returns ``(status, headers dict, parsed body)``."""
    owned = connection is None
    if connection is None:
        connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
    try:
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        raw = response.read()
        payload = json.loads(raw.decode("utf-8")) if raw else None
        return response.status, dict(response.getheaders()), payload
    finally:
        if owned:
            connection.close()


class TestEndpointParity:
    """Every GET route answers byte-for-byte like the threaded front end."""

    PATHS = (
        "/rules",
        "/rules?limit=2",
        "/recommend?basket=1,2&k=3",
        "/itemset?items=1,2",
        "/recommend",  # 400
        "/recommend?basket=zebra",  # 400
        "/nope",  # 404
    )

    def test_same_status_and_payload_as_threaded(self, attached_store):
        with RuleServer(attached_store) as threaded, AsyncRuleServer(attached_store) as asynchronous:
            for path in self.PATHS:
                t_status, _, t_payload = request_raw(threaded, "GET", path)
                a_status, _, a_payload = request_raw(asynchronous, "GET", path)
                assert (a_status, a_payload) == (t_status, t_payload), path

    def test_health_adds_frontend_diagnostics(self, served):
        status, _, payload = request_raw(served["server"], "GET", "/health")
        assert status == 200
        assert payload["frontend"] == "async"
        assert payload["cache"]["capacity"] > 0
        assert payload["rate_limit"] is None
        connections = payload["connections"]
        assert connections["max"] == DEFAULT_MAX_CONNECTIONS
        assert connections["total"] >= 1

    def test_empty_store_is_503(self):
        with AsyncRuleServer(RuleStore()) as server:
            status, _, payload = request_raw(server, "GET", "/health")
        assert status == 503
        assert payload["status"] == "empty"


class TestHeaderNormalization:
    def test_shared_contract_on_success_and_error(self, served):
        for path, expected in (("/health", 200), ("/recommend?basket=zebra", 400)):
            status, headers, _ = request_raw(served["server"], "GET", path)
            assert status == expected
            assert headers["Content-Type"] == "application/json; charset=utf-8"
            assert headers["Connection"] == "keep-alive"
            assert "Content-Length" in headers


class TestKeepAlive:
    def test_many_requests_one_connection(self, served):
        server = served["server"]
        connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            before = request_raw(server, "GET", "/health")[2]["connections"]["total"]
            for _ in range(5):
                status, _, payload = request_raw(
                    server, "GET", "/recommend?basket=1,2", connection=connection
                )
                assert status == 200
                assert payload["recommendations"]
            after = request_raw(server, "GET", "/health")[2]["connections"]["total"]
            # The five requests shared one connection (plus the two probes).
            assert after - before <= 3
        finally:
            connection.close()

    def test_connection_close_is_honoured(self, served):
        server = served["server"]
        status, headers, _ = request_raw(
            server, "GET", "/health", headers={"Connection": "close"}
        )
        assert status == 200
        assert headers["Connection"] == "close"

    def test_http10_without_keepalive_closes(self, served):
        server = served["server"]
        with socket.create_connection((server.host, server.port), timeout=10) as sock:
            sock.sendall(b"GET /health HTTP/1.0\r\n\r\n")
            data = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break  # server closed: HTTP/1.0 default honoured
                data += chunk
        head = data.split(b"\r\n\r\n", 1)[0].decode("latin-1")
        assert "Connection: close" in head

    def test_malformed_request_is_400_and_close(self, served):
        server = served["server"]
        with socket.create_connection((server.host, server.port), timeout=10) as sock:
            sock.sendall(b"NOT-HTTP\r\n\r\n")
            data = b""
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                data += chunk
        assert data.startswith(b"HTTP/1.1 400 ")


class TestMethods:
    def test_post_elsewhere_is_404(self, served):
        status, _, _ = request_raw(
            served["server"], "POST", "/rules", body=b"{}",
            headers={"Content-Type": "application/json"},
        )
        assert status == 404

    def test_other_methods_are_405_with_allow(self, served):
        status, headers, _ = request_raw(served["server"], "DELETE", "/rules")
        assert status == 405
        assert headers["Allow"] == "GET, POST"


class TestBatchRecommend:
    def post(self, server, document: object):
        body = json.dumps(document).encode("utf-8")
        return request_raw(
            server, "POST", "/recommend", body=body,
            headers={"Content-Type": "application/json"},
        )

    def test_batch_answers_every_basket_from_one_version(self, served):
        status, _, payload = self.post(
            served["server"], {"baskets": [[1], [2], [1, 2]], "k": 3}
        )
        assert status == 200
        assert payload["k"] == 3
        assert len(payload["results"]) == 3
        snapshot = served["store"].snapshot()
        assert payload["version"] == snapshot.version
        for entry, basket in zip(payload["results"], ([1], [2], [1, 2]), strict=True):
            assert entry["basket"] == basket
            expected = [r.as_dict() for r in snapshot.recommend(tuple(basket), k=3)]
            assert entry["recommendations"] == expected

    def test_k_defaults_to_five(self, served):
        status, _, payload = self.post(served["server"], {"baskets": [[1]]})
        assert status == 200
        assert payload["k"] == 5

    @pytest.mark.parametrize(
        "document",
        [
            [],  # not an object
            {},  # no baskets
            {"baskets": []},  # empty
            {"baskets": "1,2"},  # not a list of lists
            {"baskets": [[1]], "k": 0},
            {"baskets": [[1]], "k": True},
            {"baskets": [[1], []]},  # one empty basket
            {"baskets": [[1], [2, "x"]]},  # non-integer item
            {"baskets": [[1], [True]]},  # bool is not an item
        ],
    )
    def test_invalid_documents_are_400(self, served, document):
        status, _, payload = self.post(served["server"], document)
        assert status == 400
        assert "error" in payload

    def test_non_json_body_is_400(self, served):
        status, _, payload = request_raw(
            served["server"], "POST", "/recommend", body=b"\xff\xfe not json"
        )
        assert status == 400


class TestResponseCache:
    def test_repeat_query_hits_the_cache(self, served):
        server = served["server"]
        request_raw(server, "GET", "/recommend?basket=1,2&k=3")
        before = request_raw(server, "GET", "/health")[2]["cache"]
        request_raw(server, "GET", "/recommend?basket=1,2&k=3")
        after = request_raw(server, "GET", "/health")[2]["cache"]
        assert after["hits"] == before["hits"] + 1

    def test_normalized_baskets_share_an_entry(self, served):
        server = served["server"]
        request_raw(server, "GET", "/recommend?basket=1,2&k=3")
        before = request_raw(server, "GET", "/health")[2]["cache"]
        # Same basket set, different order and duplication: same cache key.
        status, _, payload = request_raw(server, "GET", "/recommend?basket=2,1,2&k=3")
        after = request_raw(server, "GET", "/health")[2]["cache"]
        assert status == 200
        assert after["hits"] == before["hits"] + 1

    def test_publication_invalidates_wholesale(self, served):
        server = served["server"]
        request_raw(server, "GET", "/recommend?basket=1,2&k=3")
        assert request_raw(server, "GET", "/health")[2]["cache"]["size"] > 0
        served["maintainer"].add_transactions([[1, 4], [2, 4]], label="live")
        health = request_raw(server, "GET", "/health")[2]
        assert health["cache"]["invalidations"] >= 1
        # The next query is answered from the new snapshot, never the cache.
        _, _, payload = request_raw(server, "GET", "/recommend?basket=1,2&k=3")
        assert payload["version"] == health["version"]

    def test_cache_size_zero_disables(self, attached_store):
        with AsyncRuleServer(attached_store, cache_size=0) as server:
            request_raw(server, "GET", "/recommend?basket=1,2")
            request_raw(server, "GET", "/recommend?basket=1,2")
            cache = request_raw(server, "GET", "/health")[2]["cache"]
        assert cache["hits"] == 0
        assert cache["size"] == 0


class TestRateLimit:
    def test_429_with_retry_after(self, attached_store):
        with AsyncRuleServer(attached_store, rate_limit=1.0, rate_burst=2.0) as server:
            statuses = [
                request_raw(
                    server, "GET", "/recommend?basket=1",
                    headers={"X-Client-Id": "impatient"},
                )[0]
                for _ in range(4)
            ]
            assert statuses[:2] == [200, 200]
            assert 429 in statuses[2:]
            status, headers, payload = request_raw(
                server, "GET", "/recommend?basket=1",
                headers={"X-Client-Id": "impatient"},
            )
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            assert payload["retry_after_seconds"] > 0
            # Limiting is per client: a different identity sails through.
            assert (
                request_raw(
                    server, "GET", "/recommend?basket=1",
                    headers={"X-Client-Id": "patient"},
                )[0]
                == 200
            )

    def test_health_is_exempt(self, attached_store):
        with AsyncRuleServer(attached_store, rate_limit=1.0, rate_burst=1.0) as server:
            for _ in range(5):
                status, _, _ = request_raw(
                    server, "GET", "/health", headers={"X-Client-Id": "probe"}
                )
                assert status == 200

    def test_limiter_stats_surface_in_health(self, attached_store):
        with AsyncRuleServer(attached_store, rate_limit=2.0) as server:
            request_raw(server, "GET", "/rules", headers={"X-Client-Id": "c"})
            health = request_raw(server, "GET", "/health")[2]
        assert health["rate_limit"]["rate"] == 2.0
        assert health["rate_limit"]["allowed"] >= 1


class TestBackpressure:
    def test_over_capacity_connection_gets_fast_503(self, attached_store):
        with AsyncRuleServer(attached_store, max_connections=1) as server:
            # Occupy the one admitted slot with an idle keep-alive connection.
            held = http.client.HTTPConnection(server.host, server.port, timeout=10)
            try:
                held.request("GET", "/health")
                held.getresponse().read()
                status, headers, payload = request_raw(server, "GET", "/health")
                assert status == 503
                assert "capacity" in payload["error"]
                assert int(headers["Retry-After"]) >= 1
                assert headers["Connection"] == "close"
            finally:
                held.close()
            # Slot released: the next connection is admitted again.
            status, _, payload = request_raw(server, "GET", "/health")
            assert status == 200
            assert payload["connections"]["rejected"] >= 1

    def test_rejects_nonpositive_bound(self, attached_store):
        with pytest.raises(ValueError):
            AsyncRuleServer(attached_store, max_connections=0)


class TestLifecycle:
    def test_close_without_start(self, attached_store):
        server = AsyncRuleServer(attached_store)
        server.close()  # never started: nothing to join, socket released

    def test_close_is_idempotent(self, attached_store):
        server = AsyncRuleServer(attached_store).start()
        server.close()
        server.close()

    def test_close_unhooks_publication_listener(self, attached_store, maintainer):
        server = AsyncRuleServer(attached_store).start()
        server.close()
        # A publication after close must not touch the dead server's cache.
        invalidations = server.cache.stats()["invalidations"]
        maintainer.add_transactions([[1, 4]], label="after-close")
        assert server.cache.stats()["invalidations"] == invalidations

    def test_bind_errors_raise_in_constructor(self, attached_store):
        with AsyncRuleServer(attached_store) as running:
            with pytest.raises(OSError):
                AsyncRuleServer(attached_store, port=running.port)

    def test_restart_after_close_needs_a_new_server(self, attached_store):
        first = AsyncRuleServer(attached_store)
        url_host = first.host
        first.close()
        second = AsyncRuleServer(attached_store, host=url_host).start()
        try:
            status, _, _ = request_raw(second, "GET", "/health")
            assert status == 200
        finally:
            second.close()

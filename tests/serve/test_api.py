"""Unit tests for the shared front-end API (parsing + header normalization).

Both front ends build every response through :mod:`repro.serve.api`; these
tests pin the normalized header contract — charset-qualified Content-Type
on success *and* error bodies, exact Content-Length, explicit Connection
disposition — that used to drift when the threaded server hand-rolled its
headers.
"""

from __future__ import annotations

import json

import pytest

from repro import RuleMaintainer, RuleStore
from repro.serve.api import (
    JSON_CONTENT_TYPE,
    BadRequest,
    encode_json,
    parse_items,
    parse_positive_int,
    reason_phrase,
    respond,
    response_headers,
)


class TestParsing:
    def test_parse_items(self):
        assert parse_items("1,2,3", "basket") == (1, 2, 3)
        assert parse_items("7", "basket") == (7,)

    def test_parse_items_tolerates_blank_tokens(self):
        assert parse_items("1,,2,", "basket") == (1, 2)

    def test_parse_items_rejects_garbage(self):
        with pytest.raises(BadRequest, match="basket"):
            parse_items("1,zebra", "basket")
        with pytest.raises(BadRequest, match="at least one"):
            parse_items(",", "basket")

    def test_parse_positive_int(self):
        assert parse_positive_int("5", "k") == 5
        with pytest.raises(BadRequest, match="positive"):
            parse_positive_int("0", "k")
        with pytest.raises(BadRequest, match="integer"):
            parse_positive_int("five", "k")


class TestEncodeJson:
    def test_strict_json(self):
        with pytest.raises(ValueError):
            encode_json({"x": float("nan")})

    def test_utf8_bytes(self):
        assert encode_json({"a": 1}) == b'{"a": 1}'


class TestResponseHeaders:
    def test_charset_and_exact_length(self):
        body = encode_json({"error": "bad"})
        headers = dict(response_headers(body, keep_alive=True))
        assert headers["Content-Type"] == JSON_CONTENT_TYPE
        assert "charset=utf-8" in headers["Content-Type"]
        assert headers["Content-Length"] == str(len(body))

    def test_connection_disposition_is_explicit(self):
        body = b"{}"
        assert dict(response_headers(body, keep_alive=True))["Connection"] == "keep-alive"
        assert dict(response_headers(body, keep_alive=False))["Connection"] == "close"

    def test_extra_headers_come_before_connection(self):
        body = b"{}"
        headers = response_headers(
            body, keep_alive=False, extra=[("Retry-After", "2")]
        )
        names = [name for name, _ in headers]
        assert names == ["Content-Type", "Content-Length", "Retry-After", "Connection"]


class TestReasonPhrase:
    @pytest.mark.parametrize(
        ("status", "phrase"),
        [(200, "OK"), (400, "Bad Request"), (429, "Too Many Requests"), (503, "Service Unavailable")],
    )
    def test_standard_codes(self, status, phrase):
        assert reason_phrase(status) == phrase


class TestRespond:
    @pytest.fixture
    def store(self, small_database):
        maintainer = RuleMaintainer(0.3, 0.5)
        maintainer.initialise(small_database)
        store = RuleStore()
        store.attach(maintainer)
        return store

    def test_bad_request_becomes_400_json(self, store):
        status, payload = respond(store, "/recommend", {})
        assert status == 400
        assert "basket" in payload["error"]
        json.dumps(payload, allow_nan=False)

    def test_empty_store_becomes_503(self):
        status, payload = respond(RuleStore(), "/rules", {})
        assert status == 503
        assert payload["status"] == "empty"

    def test_ok_routes_pass_through(self, store):
        status, payload = respond(store, "/health", {})
        assert status == 200
        assert payload["status"] == "ok"

"""Unit tests for the async front end's bounded LRU response cache."""

from __future__ import annotations

import threading

import pytest

from repro.serve.cache import DEFAULT_CACHE_SIZE, ResponseCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = ResponseCache(4)
        assert cache.get("a") is None
        cache.put("a", {"x": 1})
        assert cache.get("a") == {"x": 1}

    def test_default_capacity(self):
        assert ResponseCache().stats()["capacity"] == DEFAULT_CACHE_SIZE

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            ResponseCache(-1)


class TestLru:
    def test_evicts_least_recently_used(self):
        cache = ResponseCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_put_refreshes_existing_key(self):
        cache = ResponseCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh + replace, not a second entry
        cache.put("c", 3)
        assert cache.get("a") == 10
        assert cache.get("b") is None

    def test_size_never_exceeds_capacity(self):
        cache = ResponseCache(3)
        for index in range(10):
            cache.put(index, index)
        assert len(cache) == 3
        assert cache.stats()["evictions"] == 7


class TestZeroCapacity:
    def test_capacity_zero_disables_caching(self):
        cache = ResponseCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0


class TestInvalidation:
    def test_clear_empties_and_counts(self):
        cache = ResponseCache(8)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.clear()
        assert len(cache) == 0
        assert cache.get("a") is None
        assert cache.stats()["invalidations"] == 1


class TestStats:
    def test_hit_miss_accounting(self):
        cache = ResponseCache(4)
        cache.get("a")
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        stats = cache.stats()
        assert stats["hits"] == 2
        assert stats["misses"] == 1
        assert stats["size"] == 1


class TestThreadSafety:
    def test_concurrent_put_get_clear_is_consistent(self):
        """Hammer one cache from several threads; bounded size, no wreckage.

        The cache is written from request handlers *and* cleared from the
        maintainer's publish hook (a different thread), so mixed operations
        must never corrupt the LRU order or overshoot the bound.
        """
        cache = ResponseCache(16)
        errors: list[BaseException] = []

        def worker(seed: int) -> None:
            try:
                for index in range(500):
                    key = (seed * 500 + index) % 40
                    cache.put(key, index)
                    cache.get(key)
                    if index % 97 == 0:
                        cache.clear()
                    assert len(cache) <= 16
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(seed,)) for seed in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 16

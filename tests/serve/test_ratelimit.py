"""Unit tests for the per-client token-bucket rate limiter."""

from __future__ import annotations

import pytest

from repro.serve.ratelimit import RateLimiter, TokenBucket


class FakeClock:
    """A controllable monotonic clock."""

    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_is_available_immediately(self):
        bucket = TokenBucket(rate=1.0, burst=3.0, now=0.0)
        assert bucket.acquire(0.0) == 0.0
        assert bucket.acquire(0.0) == 0.0
        assert bucket.acquire(0.0) == 0.0
        assert bucket.acquire(0.0) > 0.0

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=2.0, burst=1.0, now=0.0)
        assert bucket.acquire(0.0) == 0.0
        assert bucket.acquire(0.0) > 0.0
        # 2 tokens/s: one token back after 0.5s.
        assert bucket.acquire(0.5) == 0.0

    def test_retry_after_is_exact(self):
        bucket = TokenBucket(rate=4.0, burst=1.0, now=0.0)
        assert bucket.acquire(0.0) == 0.0
        retry_after = bucket.acquire(0.0)
        # Empty bucket at 4 tokens/s: a full token is 0.25s away.
        assert retry_after == pytest.approx(0.25)

    def test_tokens_cap_at_burst(self):
        bucket = TokenBucket(rate=10.0, burst=2.0, now=0.0)
        # A long idle period must not bank more than the burst.
        assert bucket.acquire(60.0) == 0.0
        assert bucket.acquire(60.0) == 0.0
        assert bucket.acquire(60.0) > 0.0


class TestRateLimiter:
    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            RateLimiter(0.0)
        with pytest.raises(ValueError):
            RateLimiter(-1.0)
        with pytest.raises(ValueError):
            RateLimiter(5.0, burst=0.5)
        with pytest.raises(ValueError):
            RateLimiter(5.0, max_clients=0)

    def test_default_burst_covers_at_least_one_request(self):
        clock = FakeClock()
        limiter = RateLimiter(0.1, clock=clock)  # rate < 1: burst clamps to 1
        assert limiter.check("c") == 0.0
        assert limiter.check("c") > 0.0

    def test_clients_are_limited_independently(self):
        clock = FakeClock()
        limiter = RateLimiter(1.0, burst=1.0, clock=clock)
        assert limiter.check("alice") == 0.0
        assert limiter.check("alice") > 0.0
        assert limiter.check("bob") == 0.0  # fresh bucket, unaffected

    def test_retry_after_then_allowed(self):
        clock = FakeClock()
        limiter = RateLimiter(2.0, burst=1.0, clock=clock)
        assert limiter.check("c") == 0.0
        retry_after = limiter.check("c")
        assert retry_after == pytest.approx(0.5)
        clock.advance(retry_after)
        assert limiter.check("c") == 0.0

    def test_client_map_is_bounded(self):
        clock = FakeClock()
        limiter = RateLimiter(1.0, max_clients=3, clock=clock)
        for client in ("a", "b", "c", "d"):
            limiter.check(client)
        stats = limiter.stats()
        assert stats["clients"] == 3
        assert stats["evicted"] == 1

    def test_eviction_drops_least_recently_seen(self):
        clock = FakeClock()
        limiter = RateLimiter(1.0, burst=1.0, max_clients=2, clock=clock)
        assert limiter.check("a") == 0.0
        assert limiter.check("b") == 0.0
        assert limiter.check("a") > 0.0  # refreshes a; b becomes LRU
        limiter.check("c")  # evicts b
        # b's bucket was dropped: it gets a fresh burst despite just spending it.
        assert limiter.check("b") == 0.0

    def test_stats_counters(self):
        clock = FakeClock()
        limiter = RateLimiter(1.0, burst=1.0, clock=clock)
        limiter.check("c")
        limiter.check("c")
        stats = limiter.stats()
        assert stats["allowed"] == 1
        assert stats["limited"] == 1
        assert stats["rate"] == 1.0
        assert stats["burst"] == 1.0

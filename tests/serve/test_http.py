"""Tests for the HTTP JSON endpoint over the rule store."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro import RuleMaintainer, RuleServer, RuleStore, TransactionDatabase


@pytest.fixture
def maintainer(small_database):
    maintainer = RuleMaintainer(0.3, 0.5)
    maintainer.initialise(small_database)
    return maintainer


@pytest.fixture
def served(maintainer):
    """A running server over a store attached to the small-database maintainer."""
    store = RuleStore()
    store.attach(maintainer)
    with RuleServer(store) as server:
        yield {"server": server, "store": store, "maintainer": maintainer}


def get_json(url: str) -> dict:
    with urllib.request.urlopen(url) as response:
        return json.loads(response.read().decode("ascii"))


def get_error(url: str) -> tuple[int, dict]:
    try:
        urllib.request.urlopen(url)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("ascii"))
    raise AssertionError(f"{url} unexpectedly succeeded")


class TestHealth:
    def test_reports_snapshot_coordinates(self, served):
        payload = get_json(served["server"].url + "/health")
        snapshot = served["store"].snapshot()
        assert payload["status"] == "ok"
        assert payload["version"] == snapshot.version
        assert payload["database_size"] == snapshot.database_size
        assert payload["rules"] == snapshot.rule_count
        assert payload["itemsets"] == snapshot.itemset_count
        assert payload["min_support"] == snapshot.min_support
        assert payload["min_confidence"] == snapshot.min_confidence

    def test_version_advances_with_batches(self, served):
        url = served["server"].url
        assert get_json(url + "/health")["version"] == 0
        served["maintainer"].add_transactions([[1, 4], [2, 4]], label="live")
        assert get_json(url + "/health")["version"] == 1

    def test_empty_store_is_503(self):
        with RuleServer(RuleStore()) as server:
            code, payload = get_error(server.url + "/health")
        assert code == 503
        assert payload["status"] == "empty"


class TestRules:
    def test_serves_the_full_rule_set(self, served):
        payload = get_json(served["server"].url + "/rules")
        snapshot = served["store"].snapshot()
        assert payload["rule_count"] == snapshot.rule_count
        assert len(payload["rules"]) == snapshot.rule_count

    def test_limit(self, served):
        payload = get_json(served["server"].url + "/rules?limit=2")
        assert len(payload["rules"]) == 2

    def test_infinite_conviction_survives_the_json_layer(self):
        """An exact rule (conviction == inf) must serve as strict JSON."""
        maintainer = RuleMaintainer(0.3, 0.5)
        # Item 2 always occurs with item 1: confidence({2}=>{1}) == 1.0.
        maintainer.initialise(
            TransactionDatabase([[1, 2], [1, 2], [1, 2], [1, 3], [1, 3], [3, 4]])
        )
        assert any(rule.conviction == float("inf") for rule in maintainer.rules)
        store = RuleStore()
        store.attach(maintainer)
        with RuleServer(store) as server:
            payload = get_json(server.url + "/rules")
        convictions = [entry["conviction"] for entry in payload["rules"]]
        assert "inf" in convictions
        assert all(
            isinstance(value, (int, float)) or value == "inf" for value in convictions
        )


class TestRecommend:
    def test_recommends_unowned_items(self, served):
        payload = get_json(served["server"].url + "/recommend?basket=1,2&k=5")
        assert payload["basket"] == [1, 2]
        assert payload["recommendations"]
        for entry in payload["recommendations"]:
            assert entry["item"] not in (1, 2)

    def test_matches_the_snapshot_api(self, served):
        payload = get_json(served["server"].url + "/recommend?basket=1&k=3")
        expected = served["store"].snapshot().recommend((1,), k=3)
        assert payload["recommendations"] == [entry.as_dict() for entry in expected]

    def test_missing_basket_is_400(self, served):
        code, payload = get_error(served["server"].url + "/recommend")
        assert code == 400
        assert "basket" in payload["error"]

    def test_malformed_basket_is_400(self, served):
        code, payload = get_error(served["server"].url + "/recommend?basket=1,zebra")
        assert code == 400

    def test_bad_k_is_400(self, served):
        code, _ = get_error(served["server"].url + "/recommend?basket=1&k=0")
        assert code == 400


class TestItemset:
    def test_support_lookup(self, served, small_database):
        payload = get_json(served["server"].url + "/itemset?items=1,2")
        assert payload["support_count"] == small_database.count_itemset((1, 2))
        assert payload["large"] is True

    def test_unknown_itemset(self, served):
        payload = get_json(served["server"].url + "/itemset?items=1,5")
        assert payload["support_count"] == 0
        assert payload["large"] is False

    def test_missing_items_is_400(self, served):
        code, _ = get_error(served["server"].url + "/itemset")
        assert code == 400


class TestLifecycle:
    def test_close_without_start_returns(self):
        """close() on a never-started server must not wait on the serve loop."""
        server = RuleServer(RuleStore())
        server.close()  # would deadlock if it requested a loop shutdown

    def test_close_is_idempotent(self, maintainer):
        store = RuleStore()
        store.attach(maintainer)
        server = RuleServer(store).start()
        server.close()
        server.close()


class TestRouting:
    def test_unknown_path_is_404(self, served):
        code, payload = get_error(served["server"].url + "/nope")
        assert code == 404

    def test_every_response_is_strict_json(self, served):
        """Strict parse (json.loads already) plus explicit allow_nan check."""
        for path in ("/health", "/rules", "/recommend?basket=1", "/itemset?items=1"):
            payload = get_json(served["server"].url + path)
            json.dumps(payload, allow_nan=False)


class TestHeaderNormalization:
    """The threaded front end serves the shared normalized header set.

    Before the headers were centralised in ``repro.serve.api``, error bodies
    went out without a charset and no response carried an explicit
    ``Connection: keep-alive`` — these tests read the raw headers off the
    socket so a regression cannot hide behind urllib's tolerant parsing.
    """

    def _raw(self, served, path: str):
        import http.client

        server = served["server"]
        connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            connection.request("GET", path)
            response = connection.getresponse()
            body = response.read()
            return response, body
        finally:
            connection.close()

    def test_success_headers(self, served):
        response, body = self._raw(served, "/health")
        assert response.status == 200
        assert response.getheader("Content-Type") == "application/json; charset=utf-8"
        assert response.getheader("Content-Length") == str(len(body))
        assert response.getheader("Connection") == "keep-alive"

    def test_error_body_headers_match_success(self, served):
        """A 400 carries the same charset/length/connection contract as a 200."""
        response, body = self._raw(served, "/recommend?basket=zebra")
        assert response.status == 400
        assert response.getheader("Content-Type") == "application/json; charset=utf-8"
        assert response.getheader("Content-Length") == str(len(body))
        assert response.getheader("Connection") == "keep-alive"
        assert "basket" in json.loads(body.decode("utf-8"))["error"]

    def test_connection_survives_an_error_response(self, served):
        """Keep-alive is honoured across a 400: the same socket serves again."""
        import http.client

        server = served["server"]
        connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            connection.request("GET", "/recommend?basket=zebra")
            error = connection.getresponse()
            error.read()
            assert error.status == 400
            connection.request("GET", "/health")
            ok = connection.getresponse()
            payload = json.loads(ok.read().decode("utf-8"))
            assert ok.status == 200
            assert payload["status"] == "ok"
        finally:
            connection.close()

    def test_client_requested_close_is_honoured(self, served):
        import http.client

        server = served["server"]
        connection = http.client.HTTPConnection(server.host, server.port, timeout=10)
        try:
            connection.request("GET", "/health", headers={"Connection": "close"})
            response = connection.getresponse()
            response.read()
            assert response.getheader("Connection") == "close"
        finally:
            connection.close()

"""Unit tests for the immutable, versioned rule snapshot."""

from __future__ import annotations

import json
import random

import pytest

from repro import AprioriMiner, RuleSnapshot, TransactionDatabase, generate_rules
from repro.mining.rules import rule_from_dict, rule_key


def snapshot_of(database: TransactionDatabase, min_support=0.3, min_confidence=0.5, version=0):
    result = AprioriMiner(min_support).mine(database)
    rules = generate_rules(result.lattice, min_confidence)
    return RuleSnapshot(
        version=version,
        rules=rules,
        lattice=result.lattice,
        min_support=min_support,
        min_confidence=min_confidence,
    )


class TestConstruction:
    def test_version_and_counts(self, small_database):
        snapshot = snapshot_of(small_database, version=17)
        assert snapshot.version == 17
        assert snapshot.rule_count == len(snapshot.rules) == len(snapshot)
        assert snapshot.database_size == len(small_database)
        assert snapshot.itemset_count == len(snapshot.supports())

    def test_support_table_is_a_copy(self, small_database):
        """Later lattice mutations must not leak into a published snapshot."""
        result = AprioriMiner(0.3).mine(small_database)
        rules = generate_rules(result.lattice, 0.5)
        snapshot = RuleSnapshot(0, rules, result.lattice, 0.3, 0.5)
        before = snapshot.support_count((1, 2))
        result.lattice.add((1, 2), before + 99)
        assert snapshot.support_count((1, 2)) == before


class TestSupportLookups:
    def test_known_itemset(self, small_database):
        snapshot = snapshot_of(small_database)
        count = small_database.count_itemset((1, 2))
        assert snapshot.support_count((1, 2)) == count
        assert snapshot.support((1, 2)) == count / len(small_database)
        assert snapshot.is_large((1, 2))

    def test_lookup_canonicalises_order_and_duplicates(self, small_database):
        snapshot = snapshot_of(small_database)
        assert snapshot.support_count((2, 1)) == snapshot.support_count((1, 2))
        assert snapshot.support_count((1, 2, 2)) == snapshot.support_count((1, 2))

    def test_unknown_itemset_is_zero(self, small_database):
        snapshot = snapshot_of(small_database)
        assert snapshot.support_count((1, 5)) == 0
        assert snapshot.support((1, 5)) == 0.0
        assert not snapshot.is_large((1, 5))


class TestBasketQueries:
    def test_indexed_equals_linear_on_small(self, small_database):
        snapshot = snapshot_of(small_database)
        for basket in [(1,), (1, 2), (1, 2, 3), (2, 3, 4), (5,), ()]:
            assert snapshot.rules_for_basket(basket) == snapshot.rules_for_basket_linear(
                basket
            )

    def test_indexed_equals_linear_randomised(self, random_database_factory):
        database = random_database_factory(transactions=250, items=12, seed=41)
        snapshot = snapshot_of(database, min_support=0.1, min_confidence=0.3)
        assert snapshot.rule_count > 10  # meaningful comparison
        rng = random.Random(97)
        for _ in range(50):
            basket = rng.sample(range(12), rng.randint(0, 6))
            assert snapshot.rules_for_basket(basket) == snapshot.rules_for_basket_linear(
                basket
            )

    def test_matches_are_exactly_the_applicable_rules(self, small_database):
        snapshot = snapshot_of(small_database)
        basket = frozenset((1, 2, 3))
        matched = snapshot.rules_for_basket(basket)
        for rule in snapshot.rules:
            assert (rule in matched) == (set(rule.antecedent) <= basket)

    def test_results_keep_confidence_order(self, random_database_factory):
        database = random_database_factory(transactions=250, items=12, seed=41)
        snapshot = snapshot_of(database, min_support=0.1, min_confidence=0.3)
        matched = snapshot.rules_for_basket(range(12))
        keys = [(-rule.confidence, -rule.support) for rule in matched]
        assert keys == sorted(keys)


class TestRecommend:
    def test_excludes_owned_items(self, small_database):
        snapshot = snapshot_of(small_database)
        basket = (1, 2)
        for recommendation in snapshot.recommend(basket, k=10):
            assert recommendation.item not in basket

    def test_ranked_by_confidence_then_lift(self, random_database_factory):
        database = random_database_factory(transactions=250, items=12, seed=41)
        snapshot = snapshot_of(database, min_support=0.1, min_confidence=0.3)
        recommendations = snapshot.recommend((0, 1), k=10)
        scores = [(-r.confidence, -r.lift, -r.support) for r in recommendations]
        assert scores == sorted(scores)

    def test_k_truncates(self, random_database_factory):
        database = random_database_factory(transactions=250, items=12, seed=41)
        snapshot = snapshot_of(database, min_support=0.1, min_confidence=0.3)
        assert len(snapshot.recommend((0, 1), k=2)) <= 2

    def test_k_must_be_positive(self, small_database):
        snapshot = snapshot_of(small_database)
        with pytest.raises(ValueError):
            snapshot.recommend((1,), k=0)

    def test_backing_rule_is_applicable(self, small_database):
        snapshot = snapshot_of(small_database)
        basket = frozenset((1, 2))
        for recommendation in snapshot.recommend(basket, k=10):
            assert set(recommendation.rule.antecedent) <= basket
            assert recommendation.item in recommendation.rule.consequent


class TestDiff:
    def test_identical_snapshots_do_not_differ(self, small_database):
        first = snapshot_of(small_database, version=0)
        second = snapshot_of(small_database, version=1)
        diff = second.diff(first)
        assert not diff.changed

    def test_statistics_drift_is_reported(self, small_database):
        """A rule whose key survives but whose numbers move lands in updated."""
        first = snapshot_of(small_database, version=0)
        grown = small_database.copy()
        grown.extend([[1, 2]] * 3)  # shifts confidences without killing {1}=>{2}
        second = snapshot_of(grown, version=1)
        diff = second.diff(first)
        assert diff.updated, "statistics drift must not be reported as unchanged"
        surviving_keys = {rule_key(rule) for rule in first.rules} & {
            rule_key(rule) for rule in second.rules
        }
        for before, after in diff.updated:
            assert rule_key(before) == rule_key(after)
            assert rule_key(before) in surviving_keys
            assert before != after


class TestSerialization:
    def test_as_dict_is_strict_json(self, small_database):
        snapshot = snapshot_of(small_database)
        payload = json.dumps(snapshot.as_dict(), allow_nan=False)
        parsed = json.loads(payload)
        assert parsed["version"] == snapshot.version
        assert parsed["rule_count"] == snapshot.rule_count

    def test_limit_truncates_rules_only(self, small_database):
        snapshot = snapshot_of(small_database)
        payload = snapshot.as_dict(limit=1)
        assert len(payload["rules"]) == 1
        assert payload["rule_count"] == snapshot.rule_count

    def test_rules_round_trip(self, small_database):
        snapshot = snapshot_of(small_database)
        for entry, rule in zip(snapshot.as_dict()["rules"], snapshot.rules, strict=True):
            assert rule_from_dict(entry) == rule

"""Tests for the lock-free session feed behind ``repro serve --session``."""

from __future__ import annotations

import pytest

from repro import (
    MaintenanceSession,
    RuleStore,
    SessionFeed,
    UpdateBatch,
    read_session_state,
)


@pytest.fixture
def session_dir(tmp_path, small_database):
    directory = tmp_path / "session"
    with MaintenanceSession.create(
        directory, small_database, min_support=0.3, min_confidence=0.5
    ) as session:
        session.add_transactions([[1, 4], [1, 2, 4], [2, 4]], label="seed")
    return directory


class TestReadSessionState:
    def test_matches_open(self, session_dir):
        maintainer = read_session_state(session_dir)
        with MaintenanceSession.open(session_dir) as session:
            assert maintainer.sequence == session.applied_seq
            assert maintainer.rules == session.rules
            assert (
                maintainer.result.lattice.supports()
                == session.result.lattice.supports()
            )

    def test_does_not_take_the_writer_lock(self, session_dir):
        """The serving path must read while a live writer holds the session."""
        with MaintenanceSession.open(session_dir) as session:
            session.add_transactions([[3, 4]], label="held")
            maintainer = read_session_state(session_dir)
            assert maintainer.sequence == session.applied_seq
            assert maintainer.rules == session.rules

    def test_leaves_the_journal_untouched(self, session_dir):
        journal = (session_dir / "journal.jsonl").read_bytes()
        read_session_state(session_dir)
        assert (session_dir / "journal.jsonl").read_bytes() == journal


class TestSessionFeed:
    def test_initial_refresh_publishes(self, session_dir):
        store = RuleStore()
        feed = SessionFeed(store, session_dir, interval=0.05)
        assert feed.refresh() is True
        assert store.version == 1

    def test_no_change_is_a_cheap_noop(self, session_dir):
        store = RuleStore()
        feed = SessionFeed(store, session_dir, interval=0.05)
        feed.refresh()
        published = store.publications
        assert feed.refresh() is False
        assert store.publications == published

    def test_new_batches_advance_the_snapshot(self, session_dir):
        store = RuleStore()
        feed = SessionFeed(store, session_dir, interval=0.05)
        feed.refresh()
        with MaintenanceSession.open(session_dir) as session:
            session.remove_transactions([[1, 2, 3]], label="later")
            expected_rules = tuple(session.rules)
            expected_size = len(session.database)
        assert feed.refresh() is True
        snapshot = store.snapshot()
        assert snapshot.version == 2
        assert snapshot.rules == expected_rules
        assert snapshot.database_size == expected_size

    def test_missing_session_keeps_previous_snapshot(self, session_dir, tmp_path):
        store = RuleStore()
        feed = SessionFeed(store, session_dir, interval=0.05)
        feed.refresh()
        broken = SessionFeed(store, tmp_path / "nope", interval=0.05)
        assert broken.refresh() is False
        assert store.version == 1  # previous snapshot still served

    def test_strict_refresh_raises_the_real_diagnosis(self, tmp_path):
        from repro.errors import StorageError

        broken = SessionFeed(RuleStore(), tmp_path / "nope", interval=0.05)
        with pytest.raises(StorageError):
            broken.refresh(strict=True)

    def test_unreadable_state_keeps_previous_snapshot(self, session_dir):
        """A raced checkpoint sweep surfaces as a clean skip, not a crash."""
        store = RuleStore()
        feed = SessionFeed(store, session_dir, interval=0.05)
        feed.refresh()
        with MaintenanceSession.open(session_dir) as session:
            session.add_transactions([[2, 3, 4]], label="new")
        # Simulate the mid-checkpoint race: the manifest still names a
        # snapshot pair that has just been swept away.
        for snapshot_file in session_dir.glob("snapshot-*.bin"):
            snapshot_file.unlink()
        assert feed.refresh() is False
        assert store.version == 1

    def test_background_thread_lifecycle(self, session_dir):
        import time

        store = RuleStore()
        # interval far beyond the wait deadline: only the loop-entry refresh
        # can publish, pinning that start() brings an empty store live
        # immediately rather than after the first full interval.
        with SessionFeed(store, session_dir, interval=60.0) as feed:
            assert feed._thread is not None
            deadline = time.monotonic() + 10.0
            while not store.has_snapshot and time.monotonic() < deadline:
                time.sleep(0.01)
        assert feed._thread is None
        assert store.version == 1  # the entry refresh published

    def test_refresh_closes_the_rebuilt_maintainer(self, session_dir, monkeypatch):
        """Each republish must release its maintainer's engine resources."""
        import repro.serve.feed as feed_module

        closed = []
        real_read = feed_module.read_session_state

        def tracking_read(directory):
            maintainer = real_read(directory)
            original_close = maintainer.close
            maintainer.close = lambda: (closed.append(True), original_close())[1]
            return maintainer

        monkeypatch.setattr(feed_module, "read_session_state", tracking_read)
        feed = SessionFeed(RuleStore(), session_dir, interval=0.05)
        assert feed.refresh() is True
        assert closed == [True]

    def test_interval_must_be_positive(self, session_dir):
        with pytest.raises(ValueError):
            SessionFeed(RuleStore(), session_dir, interval=0.0)

    def test_scrubbed_record_replaced_at_same_seq_is_republished(self, session_dir):
        """The seq number alone must not decide freshness.

        If the feed replays a journal record in the window before the writer
        scrubs it (a refused batch) and a different batch later takes the
        same sequence number, the on-disk journal identity changes even
        though applied_seq does not — the feed must rebuild, not keep
        serving the rolled-back state as that version.
        """
        store = RuleStore()
        feed = SessionFeed(store, session_dir, interval=0.05)
        journal = session_dir / "journal.jsonl"
        committed = journal.read_bytes()

        # The feed publishes a state containing a journaled batch...
        with MaintenanceSession.open(session_dir) as session:
            session.add_transactions([[1, 5], [1, 5], [1, 5]], label="doomed")
        assert feed.refresh() is True
        doomed_rules = store.snapshot().rules

        # ...which the writer then scrubs; a different batch takes seq 2.
        journal.write_bytes(committed)
        with MaintenanceSession.open(session_dir) as session:
            session.remove_transactions([[1, 2, 3]], label="real")
            expected_rules = tuple(session.rules)
            expected_size = len(session.database)

        assert feed.refresh() is True
        snapshot = store.snapshot()
        assert snapshot.version == 2
        assert snapshot.rules == expected_rules != doomed_rules
        assert snapshot.database_size == expected_size

"""Concurrent stress test: lock-free readers vs. a live maintenance writer.

The acceptance bar for the serving subsystem: with one writer applying a
mixed insert/delete batch sequence and several reader threads querying the
store continuously, **every** read must observe a single internally
consistent snapshot — its version, rule set, support table and database
size must all belong to the same committed batch, never a half-applied
mixture.

The test first replays the exact batch sequence on a shadow maintainer to
record, per version, what the consistent state *is* (maintenance is
deterministic, so the live run must produce byte-identical states).  The
readers then hammer the store while the writer applies the batches, checking
every observed snapshot against the expectation table for its version, plus
monotonicity (a reader never sees the version go backwards) and index/linear
query agreement on the snapshot it holds.
"""

from __future__ import annotations

import random
import threading

from repro import RuleMaintainer, RuleStore, TransactionDatabase, UpdateBatch

MIN_SUPPORT = 0.15
MIN_CONFIDENCE = 0.4
BATCHES = 12
READERS = 4


def build_batches(seed: int = 20260730) -> tuple[TransactionDatabase, list[UpdateBatch]]:
    """A base database plus a mixed insert/delete batch sequence.

    Deletions always target transactions known to still be present (the
    writer would otherwise refuse the batch), and every batch carries both
    kinds so the FUP2 path is exercised throughout.
    """
    rng = random.Random(seed)
    universe = list(range(1, 13))
    rows = [sorted(rng.sample(universe, rng.randint(2, 6))) for _ in range(160)]
    base = TransactionDatabase(rows, name="stress")

    live = list(rows)
    batches = []
    for index in range(BATCHES):
        insertions = [
            sorted(rng.sample(universe, rng.randint(2, 6))) for _ in range(8)
        ]
        deletions = [live.pop(rng.randrange(len(live))) for _ in range(4)]
        live.extend(insertions)
        batches.append(
            UpdateBatch.from_iterables(
                insertions=insertions, deletions=deletions, label=f"stress-{index}"
            )
        )
    return base, batches


def expected_states(base, batches):
    """version -> (rules, database size, support table) from a shadow replay."""
    shadow = RuleMaintainer(MIN_SUPPORT, MIN_CONFIDENCE)
    shadow.initialise(base)
    states = {
        0: (
            tuple(shadow.rules),
            len(shadow.database),
            dict(shadow.result.lattice.supports()),
        )
    }
    for batch in batches:
        shadow.apply(batch)
        states[shadow.sequence] = (
            tuple(shadow.rules),
            len(shadow.database),
            dict(shadow.result.lattice.supports()),
        )
    return states


def test_readers_always_observe_consistent_snapshots():
    base, batches = build_batches()
    states = expected_states(base, batches)
    assert len(states) == BATCHES + 1

    maintainer = RuleMaintainer(MIN_SUPPORT, MIN_CONFIDENCE)
    store = RuleStore()
    store.attach(maintainer)
    maintainer.initialise(base)

    failures: list[str] = []
    observed_versions: set[int] = set()
    done = threading.Event()
    start = threading.Barrier(READERS + 1)

    def reader(identity: int) -> None:
        rng = random.Random(identity)
        last_version = -1
        reads = 0
        start.wait()
        while not done.is_set() or reads == 0:
            snapshot = store.snapshot()
            reads += 1
            version = snapshot.version
            if version < last_version:
                failures.append(
                    f"reader {identity}: version went backwards "
                    f"({last_version} -> {version})"
                )
                return
            last_version = version
            if version not in states:
                failures.append(f"reader {identity}: unknown version {version}")
                return
            rules, size, supports = states[version]
            if snapshot.rules != rules:
                failures.append(
                    f"reader {identity}: rule set does not match version {version}"
                )
                return
            if snapshot.database_size != size:
                failures.append(
                    f"reader {identity}: database size {snapshot.database_size} "
                    f"does not match version {version} (expected {size})"
                )
                return
            if dict(snapshot.supports()) != supports:
                failures.append(
                    f"reader {identity}: support table does not match version {version}"
                )
                return
            basket = rng.sample(range(1, 13), rng.randint(1, 5))
            if snapshot.rules_for_basket(basket) != snapshot.rules_for_basket_linear(
                basket
            ):
                failures.append(
                    f"reader {identity}: indexed and linear query disagree on "
                    f"version {version}"
                )
                return
            observed_versions.add(version)

    threads = [
        threading.Thread(target=reader, args=(identity,), daemon=True)
        for identity in range(READERS)
    ]
    for thread in threads:
        thread.start()

    start.wait()  # release the readers and the writer together
    for batch in batches:
        maintainer.apply(batch)
    done.set()
    for thread in threads:
        thread.join(timeout=60)
        assert not thread.is_alive(), "reader thread failed to finish"

    assert not failures, "\n".join(failures)
    assert store.version == BATCHES
    # The readers genuinely overlapped the writer: more than just the final
    # state was observed.
    assert len(observed_versions) >= 2, observed_versions

"""End-to-end integration tests exercising the whole stack together.

These tests wire the synthetic generator, the miners, FUP/FUP2, the
maintenance manager and persistence into the workflows a downstream user
would actually run — the point is to catch interface mismatches that unit
tests on individual modules cannot see.
"""

from __future__ import annotations

import pytest

from repro import (
    AprioriMiner,
    DhpMiner,
    FupUpdater,
    RuleMaintainer,
    SyntheticConfig,
    SyntheticDataGenerator,
    UpdateBatch,
    generate_rules,
    load_database,
    save_database,
)
from repro.harness.runner import compare_update_strategies


@pytest.fixture(scope="module")
def synthetic_pair():
    config = SyntheticConfig(
        database_size=1_500,
        increment_size=300,
        mean_transaction_size=8,
        mean_pattern_size=3,
        pattern_count=150,
        item_count=200,
        seed=77,
    )
    return SyntheticDataGenerator(config).generate()


class TestSyntheticWorkflow:
    def test_fup_on_generated_data_matches_remining(self, synthetic_pair):
        original, increment = synthetic_pair
        support = 0.01
        initial = AprioriMiner(support).mine(original)
        fup = FupUpdater(support).update(original, initial, increment)
        remined = AprioriMiner(support).mine(original.concatenate(increment))
        assert fup.lattice.supports() == remined.lattice.supports()

    def test_three_way_comparison_is_consistent(self, synthetic_pair):
        original, increment = synthetic_pair
        comparison = compare_update_strategies(original, increment, 0.0125, workload="e2e")
        assert comparison.consistent()
        # FUP's headline property on realistic data: far fewer candidates.
        assert comparison.fup.candidates_generated < comparison.dhp.candidates_generated

    def test_generated_data_has_multi_level_structure(self, synthetic_pair):
        original, _ = synthetic_pair
        result = DhpMiner(0.01).mine(original)
        assert result.lattice.max_size() >= 2


class TestMaintainerLifecycle:
    def test_daily_increments_with_rule_tracking(self, synthetic_pair):
        original, increment = synthetic_pair
        maintainer = RuleMaintainer(min_support=0.015, min_confidence=0.4)
        maintainer.initialise(original)
        # Split the increment into three "days" and apply them one by one.
        day_size = len(increment) // 3
        for day in range(3):
            start = day * day_size
            stop = start + day_size if day < 2 else len(increment)
            report = maintainer.add_transactions(
                [list(transaction) for transaction in increment.transactions()[start:stop]],
                label=f"day-{day}",
            )
            assert report.algorithm == "fup"
        final = AprioriMiner(0.015).mine(original.concatenate(increment))
        assert maintainer.result.lattice.supports() == final.lattice.supports()
        assert maintainer.rules == generate_rules(final.lattice, 0.4)

    def test_sliding_window_with_deletions(self, synthetic_pair):
        original, increment = synthetic_pair
        window = original.copy()
        maintainer = RuleMaintainer(min_support=0.02, min_confidence=0.5)
        maintainer.initialise(window)
        # Slide: remove the 200 oldest transactions, add 200 new ones.
        oldest = [list(transaction) for transaction in window.transactions()[:200]]
        newest = [list(transaction) for transaction in increment.transactions()[:200]]
        report = maintainer.apply(
            UpdateBatch.from_iterables(insertions=newest, deletions=oldest, label="slide")
        )
        assert report.algorithm == "fup2"
        expected = original.slice(200).concatenate(increment.slice(0, 200))
        remined = AprioriMiner(0.02).mine(expected)
        assert maintainer.result.lattice.supports() == remined.lattice.supports()


class TestPersistenceWorkflow:
    def test_save_mine_update_reload_cycle(self, tmp_path, synthetic_pair):
        original, increment = synthetic_pair
        database_path = tmp_path / "db.txt"
        increment_path = tmp_path / "increment.bin"
        save_database(original, database_path)
        save_database(increment, increment_path, binary=True)

        reloaded_original = load_database(database_path)
        reloaded_increment = load_database(increment_path, binary=True)
        assert list(reloaded_original) == list(original)
        assert list(reloaded_increment) == list(increment)

        support = 0.02
        initial = AprioriMiner(support).mine(reloaded_original)
        fup = FupUpdater(support).update(reloaded_original, initial, reloaded_increment)
        remined = AprioriMiner(support).mine(original.concatenate(increment))
        assert fup.lattice.supports() == remined.lattice.supports()

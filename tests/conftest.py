"""Shared fixtures for the test suite.

The fixtures fall into three groups:

* tiny hand-written databases whose large itemsets can be verified by eye,
* the two worked examples of the paper (Examples 1 and 2 of Section 3), and
* deterministic random-database factories used by the integration and
  property-style tests to cross-check the algorithms against each other.
"""

from __future__ import annotations

import random
from typing import Callable

import pytest

from repro import TransactionDatabase
from repro.mining.result import ItemsetLattice


@pytest.fixture
def small_database() -> TransactionDatabase:
    """Nine transactions over five items with obvious frequent pairs."""
    return TransactionDatabase(
        [
            [1, 2, 3],
            [1, 2],
            [1, 2, 4],
            [2, 3],
            [1, 3],
            [2, 4],
            [1, 2, 3],
            [3, 4],
            [1, 2, 3, 4],
        ],
        name="small",
    )


@pytest.fixture
def small_increment() -> TransactionDatabase:
    """A three-transaction increment for the small database."""
    return TransactionDatabase([[1, 4], [1, 2, 4], [4, 5]], name="small-increment")


@pytest.fixture
def random_database_factory() -> Callable[..., TransactionDatabase]:
    """Factory producing reproducible random databases.

    ``factory(transactions, items, max_size, seed)`` returns a database of the
    requested shape; the default arguments give a database that is small
    enough for brute-force verification yet rich enough to exercise several
    itemset levels.
    """

    def factory(
        transactions: int = 200,
        items: int = 15,
        max_size: int = 8,
        seed: int = 7,
        name: str = "random",
    ) -> TransactionDatabase:
        rng = random.Random(seed)
        universe = list(range(items))
        rows = [
            rng.sample(universe, rng.randint(1, max_size))
            for _ in range(transactions)
        ]
        return TransactionDatabase(rows, name=name)

    return factory


# --------------------------------------------------------------------- #
# Paper Example 1 (Section 3.1)
# --------------------------------------------------------------------- #
# D = 1000, d = 100, s = 3%.  Items I1..I4 are encoded as 1..4.
# L1 = {I1, I2} with supports 32 and 31.  In the increment, I1 appears 4
# times, I2 once, I3 six times and I4 twice; I3 has support 28 in DB.
# Expected: I2 becomes a loser, I4 is pruned from the candidates, I3 becomes a
# new large 1-itemset, so L'1 = {I1, I3}.


def _example1_original() -> TransactionDatabase:
    """A 1000-transaction database realising Example 1's support counts."""
    transactions: list[list[int]] = []
    transactions.extend([[1]] * 32)       # I1.supportD = 32
    transactions.extend([[2]] * 31)       # I2.supportD = 31
    transactions.extend([[3]] * 28)       # I3.supportD = 28
    filler = 1000 - len(transactions)
    transactions.extend([[9]] * filler)   # item 9 pads the database to D=1000
    return TransactionDatabase(transactions, name="example1-DB")


def _example1_increment() -> TransactionDatabase:
    """A 100-transaction increment realising Example 1's increment counts."""
    transactions: list[list[int]] = []
    transactions.extend([[1]] * 4)        # I1.supportd = 4
    transactions.extend([[2]] * 1)        # I2.supportd = 1
    transactions.extend([[3]] * 6)        # I3.supportd = 6
    transactions.extend([[4]] * 2)        # I4.supportd = 2
    filler = 100 - len(transactions)
    transactions.extend([[9]] * filler)
    return TransactionDatabase(transactions, name="example1-db")


@pytest.fixture
def example1() -> dict[str, object]:
    """The paper's Example 1: databases, old lattice, threshold."""
    original = _example1_original()
    lattice = ItemsetLattice(database_size=len(original))
    lattice.add((1,), 32)
    lattice.add((2,), 31)
    # Item 9 pads the database and is also large in DB; recording it keeps the
    # old lattice honest (FUP must also re-examine it).
    lattice.add((9,), original.count_itemset((9,)))
    return {
        "original": original,
        "increment": _example1_increment(),
        "old_lattice": lattice,
        "min_support": 0.03,
    }


# --------------------------------------------------------------------- #
# Paper Example 2 (Section 3.2)
# --------------------------------------------------------------------- #
# D = 1000, d = 100, s = 3%.  L1 = {I1, I2, I3}, L2 = {I1I2, I2I3} with
# I1I2.supportD = 50 and I2I3.supportD = 31.  After the first FUP iteration
# L'1 = {I1, I2, I4} (I3 is a loser, I4 is a new winner).  In the increment
# I1I2 appears 3 times, I1I4 five times and I2I4 twice.  Expected
# L'2 = {I1I2, I1I4}: I2I3 is filtered by Lemma 3, I2I4 is pruned by its
# increment support, and I1I4 is the new large 2-itemset.


def _example2_original() -> TransactionDatabase:
    """A 1000-transaction database realising Example 2's support counts.

    The counts are arranged so that, at s = 3% (threshold 30 in DB):

    * L1 = {I1, I2, I3} and L2 = {I1I2, I2I3} hold in DB,
    * I1I2 has support 50 and I2I3 support 31 in DB (the paper's numbers),
    * I1I4 has support 29 in DB, so neither I4 nor I1I4 is large there.
      (The paper states 30, but a support of 30 would make I4 large in DB,
      contradicting L1 = {I1, I2, I3}; 29 keeps the instance consistent while
      preserving every conclusion of the example.)
    """
    transactions: list[list[int]] = []
    transactions.extend([[1, 2]] * 50)       # I1I2 pairs
    transactions.extend([[2, 3]] * 31)       # I2I3 pairs; I3 support = 31
    transactions.extend([[1, 4]] * 29)       # I1I4 pairs (I4 small overall)
    filler = 1000 - len(transactions)
    transactions.extend([[9]] * filler)
    return TransactionDatabase(transactions, name="example2-DB")


def _example2_increment() -> TransactionDatabase:
    """A 100-transaction increment realising Example 2's increment counts.

    In the increment: I1 appears often enough to stay large, I2 stays large,
    I3 almost vanishes (it becomes a loser), I4 appears 34 times so it becomes
    a new large 1-itemset, I1I2 appears 3 times, I1I4 five times and I2I4
    twice.
    """
    transactions: list[list[int]] = []
    transactions.extend([[1, 2]] * 3)        # I1I2.supportd = 3
    transactions.extend([[1, 4]] * 5)        # I1I4.supportd = 5
    transactions.extend([[2, 4]] * 2)        # I2I4.supportd = 2
    transactions.extend([[4]] * 27)          # I4 alone: total I4.supportd = 34
    transactions.extend([[1]] * 10)          # keep I1 comfortably large
    transactions.extend([[2]] * 10)          # keep I2 comfortably large
    filler = 100 - len(transactions)
    transactions.extend([[9]] * filler)
    return TransactionDatabase(transactions, name="example2-db")


@pytest.fixture
def example2() -> dict[str, object]:
    """The paper's Example 2: databases, old lattice, threshold."""
    original = _example2_original()
    lattice = ItemsetLattice(database_size=len(original))
    for candidate in [(1,), (2,), (3,), (9,), (1, 2), (2, 3)]:
        lattice.add(candidate, original.count_itemset(candidate))
    return {
        "original": original,
        "increment": _example2_increment(),
        "old_lattice": lattice,
        "min_support": 0.03,
    }

"""Test-suite package root (makes ``tests.property`` relative imports work)."""

"""Unit tests for the DHP baseline miner."""

from __future__ import annotations

import pytest

from repro import AprioriMiner, DhpMiner, TransactionDatabase, mine_dhp
from repro.errors import InvalidThresholdError
from repro.mining.dhp import DhpOptions, _trim_transaction


class TestDhpAgainstApriori:
    """DHP must find exactly the same large itemsets (it only prunes harder)."""

    def test_small_database(self, small_database):
        for support in (0.2, 0.3, 0.4, 0.6):
            apriori = AprioriMiner(support).mine(small_database)
            dhp = DhpMiner(support).mine(small_database)
            assert dhp.lattice.supports() == apriori.lattice.supports()

    def test_random_databases(self, random_database_factory):
        for seed in range(4):
            database = random_database_factory(transactions=150, items=14, seed=seed)
            apriori = AprioriMiner(0.1).mine(database)
            dhp = DhpMiner(0.1).mine(database)
            assert dhp.lattice.supports() == apriori.lattice.supports()

    def test_all_options_disabled_is_still_correct(self, random_database_factory):
        database = random_database_factory(transactions=120, items=12, seed=11)
        options = DhpOptions(use_hash_filter=False, use_transaction_trimming=False)
        apriori = AprioriMiner(0.12).mine(database)
        dhp = DhpMiner(0.12, options=options).mine(database)
        assert dhp.lattice.supports() == apriori.lattice.supports()

    def test_small_hash_table_is_still_correct(self, random_database_factory):
        # A tiny table creates heavy collisions; the filter must stay sound.
        database = random_database_factory(transactions=150, items=14, seed=3)
        options = DhpOptions(hash_table_size=3)
        apriori = AprioriMiner(0.1).mine(database)
        dhp = DhpMiner(0.1, options=options).mine(database)
        assert dhp.lattice.supports() == apriori.lattice.supports()


class TestDhpPruning:
    def test_hash_filter_reduces_level2_candidates(self, random_database_factory):
        database = random_database_factory(transactions=300, items=25, max_size=6, seed=5)
        with_filter = DhpMiner(0.05).mine(database)
        without_filter = DhpMiner(0.05, options=DhpOptions(use_hash_filter=False)).mine(database)
        assert with_filter.candidates_per_level.get(2, 0) <= without_filter.candidates_per_level.get(2, 0)

    def test_empty_database(self):
        result = DhpMiner(0.5).mine(TransactionDatabase())
        assert len(result.lattice) == 0

    def test_max_itemset_size_cap(self, small_database):
        result = DhpMiner(0.3, max_itemset_size=1).mine(small_database)
        assert result.lattice.max_size() == 1

    def test_convenience_wrapper(self, small_database):
        assert (
            mine_dhp(small_database, 0.4).lattice.supports()
            == DhpMiner(0.4).mine(small_database).lattice.supports()
        )


class TestDhpValidation:
    def test_rejects_bad_support(self):
        with pytest.raises(InvalidThresholdError):
            DhpMiner(0.0)

    def test_rejects_bad_hash_table(self):
        with pytest.raises(ValueError):
            DhpOptions(hash_table_size=0)

    def test_rejects_bad_max_size(self):
        with pytest.raises(ValueError):
            DhpMiner(0.5, max_itemset_size=-1)


class TestTransactionTrimming:
    def test_items_below_occurrence_threshold_are_removed(self):
        # At level 2, item 4 occurs in only one matched candidate; it cannot
        # be part of a 3-itemset within this transaction and is dropped.
        transaction = (1, 2, 3, 4)
        matches = [(1, 2), (1, 3), (2, 3), (3, 4)]
        trimmed = _trim_transaction(transaction, matches, size=2)
        assert 4 not in trimmed
        assert set(trimmed) == {1, 2, 3}

    def test_transaction_dropped_when_too_short(self):
        assert _trim_transaction((1, 2), [(1, 2)], size=2) == ()

    def test_transaction_dropped_without_matches(self):
        assert _trim_transaction((1, 2, 3), [], size=2) == ()

    def test_instrumentation_reads_fewer_transactions_with_trimming(
        self, random_database_factory
    ):
        database = random_database_factory(transactions=400, items=20, max_size=6, seed=9)
        trimmed = DhpMiner(0.05).mine(database)
        untrimmed = DhpMiner(
            0.05, options=DhpOptions(use_transaction_trimming=False)
        ).mine(database)
        assert trimmed.transactions_read <= untrimmed.transactions_read

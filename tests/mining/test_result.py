"""Unit tests for the itemset lattice and mining-result containers."""

from __future__ import annotations

import pytest

from repro.errors import InvalidItemsetError, InvalidThresholdError
from repro.mining.result import (
    ItemsetLattice,
    MiningResult,
    required_support_count,
    validate_min_support,
)


class TestRequiredSupportCount:
    def test_exact_products_are_not_rounded_up(self):
        # 0.03 * 1100 is 33.000000000000004 in floating point; the threshold
        # must still be 33, matching the paper's Example 1 arithmetic.
        assert required_support_count(0.03, 1100) == 33

    def test_fractional_products_round_up(self):
        assert required_support_count(0.03, 1010) == 31  # 30.3 -> 31

    def test_full_support(self):
        assert required_support_count(1.0, 250) == 250

    def test_empty_database(self):
        assert required_support_count(0.1, 0) == 0

    @pytest.mark.parametrize(
        ("support", "size"),
        [(0.06, 101_000), (0.0075, 101_000), (0.02, 11_000), (0.01, 350_000)],
    )
    def test_paper_parameter_points_match_exact_arithmetic(self, support, size):
        from fractions import Fraction

        exact = Fraction(str(support)) * size
        expected = int(exact) if exact.denominator == 1 else int(exact) + 1
        assert required_support_count(support, size) == expected


class TestValidateMinSupport:
    def test_accepts_valid_values(self):
        assert validate_min_support(0.5) == 0.5
        assert validate_min_support(1) == 1.0

    @pytest.mark.parametrize("bad", [0.0, -0.1, 1.5, "high", None, True])
    def test_rejects_invalid_values(self, bad):
        with pytest.raises(InvalidThresholdError):
            validate_min_support(bad)


class TestItemsetLattice:
    def test_add_and_query(self):
        lattice = ItemsetLattice(database_size=10)
        lattice.add((1, 2), 4)
        assert (1, 2) in lattice
        assert lattice.support_count((1, 2)) == 4
        assert lattice.support((1, 2)) == pytest.approx(0.4)

    def test_add_canonicalises(self):
        lattice = ItemsetLattice()
        lattice.add((2, 1), 3)  # type: ignore[arg-type]
        assert lattice.support_count((1, 2)) == 3

    def test_add_rejects_negative_count(self):
        lattice = ItemsetLattice()
        with pytest.raises(InvalidItemsetError):
            lattice.add((1,), -1)

    def test_missing_itemset_has_zero_support(self):
        lattice = ItemsetLattice(database_size=10)
        assert lattice.support_count((9,)) == 0
        assert lattice.support((9,)) == 0.0

    def test_levels(self):
        lattice = ItemsetLattice()
        lattice.add((1,), 5)
        lattice.add((2,), 5)
        lattice.add((1, 2), 3)
        assert lattice.level(1) == {(1,), (2,)}
        assert lattice.level(2) == {(1, 2)}
        assert lattice.level(3) == set()
        assert lattice.sizes() == [1, 2]
        assert lattice.max_size() == 2

    def test_discard(self):
        lattice = ItemsetLattice()
        lattice.add((1,), 5)
        lattice.discard((1,))
        assert (1,) not in lattice
        assert lattice.max_size() == 0
        lattice.discard((1,))  # idempotent

    def test_itemsets_sorted_by_size_then_lex(self):
        lattice = ItemsetLattice()
        lattice.add((2, 3), 1)
        lattice.add((1,), 1)
        lattice.add((1, 2), 1)
        lattice.add((3,), 1)
        assert lattice.itemsets() == [(1,), (3,), (1, 2), (2, 3)]

    def test_copy_is_independent(self):
        lattice = ItemsetLattice(database_size=5)
        lattice.add((1,), 2)
        clone = lattice.copy()
        clone.add((2,), 1)
        assert (2,) not in lattice
        assert clone.database_size == 5

    def test_equality(self):
        first = ItemsetLattice({(1,): 2})
        second = ItemsetLattice({(1,): 2})
        third = ItemsetLattice({(1,): 3})
        assert first == second
        assert first != third

    def test_downward_closure_check(self):
        lattice = ItemsetLattice()
        lattice.add((1, 2), 2)  # subsets missing
        assert lattice.violates_downward_closure() == [(1, 2)]
        lattice.add((1,), 3)
        lattice.add((2,), 3)
        assert lattice.violates_downward_closure() == []

    def test_constructor_from_mapping(self):
        lattice = ItemsetLattice({(1,): 4, (1, 2): 2}, database_size=8)
        assert len(lattice) == 2
        assert lattice.database_size == 8


class TestMiningResult:
    def _result(self) -> MiningResult:
        lattice = ItemsetLattice({(1,): 6, (2,): 5, (1, 2): 4}, database_size=10)
        return MiningResult(
            lattice=lattice,
            min_support=0.3,
            algorithm="apriori",
            candidates_generated=7,
            candidates_per_level={1: 4, 2: 3},
            database_scans=2,
            transactions_read=20,
            elapsed_seconds=0.01,
        )

    def test_properties(self):
        result = self._result()
        assert result.database_size == 10
        assert result.large_itemsets == [(1,), (2,), (1, 2)]
        assert result.level(2) == {(1, 2)}

    def test_support_accessors_accept_any_iterable(self):
        result = self._result()
        assert result.support_count([2, 1]) == 4
        assert result.support([1]) == pytest.approx(0.6)

    def test_summary_fields(self):
        summary = self._result().summary()
        assert summary["algorithm"] == "apriori"
        assert summary["large_itemsets"] == 3
        assert summary["candidates_generated"] == 7
        assert summary["max_itemset_size"] == 2

"""Unit tests for association-rule generation and interest measures."""

from __future__ import annotations

import pytest

from repro import AprioriMiner, TransactionDatabase, generate_rules
from repro.errors import InvalidThresholdError
from repro.mining.result import ItemsetLattice
from repro.mining.rules import (
    AssociationRule,
    rule_confidence,
    rule_conviction,
    rule_leverage,
    rule_lift,
)


@pytest.fixture
def mined_lattice(small_database) -> ItemsetLattice:
    return AprioriMiner(min_support=0.3).mine(small_database).lattice


class TestRuleGeneration:
    def test_rules_meet_confidence_threshold(self, mined_lattice):
        for rule in generate_rules(mined_lattice, min_confidence=0.7):
            assert rule.confidence >= 0.7

    def test_rule_statistics_are_consistent(self, small_database, mined_lattice):
        for rule in generate_rules(mined_lattice, min_confidence=0.5):
            joint = small_database.count_itemset(rule.items)
            antecedent = small_database.count_itemset(rule.antecedent)
            assert rule.support_count == joint
            assert rule.support == pytest.approx(joint / len(small_database))
            assert rule.confidence == pytest.approx(joint / antecedent)

    def test_antecedent_and_consequent_are_disjoint(self, mined_lattice):
        for rule in generate_rules(mined_lattice, min_confidence=0.5):
            assert not set(rule.antecedent) & set(rule.consequent)
            assert rule.items in mined_lattice

    def test_every_split_of_every_large_itemset_is_considered(self):
        # A fully deterministic database: {1, 2} in every transaction.
        database = TransactionDatabase([[1, 2]] * 4)
        lattice = AprioriMiner(0.5).mine(database).lattice
        rules = generate_rules(lattice, min_confidence=0.9)
        pairs = {(rule.antecedent, rule.consequent) for rule in rules}
        assert ((1,), (2,)) in pairs
        assert ((2,), (1,)) in pairs

    def test_confidence_filters_asymmetric_rules(self):
        # 1 => 2 holds strongly; 2 => 1 only half the time.
        database = TransactionDatabase([[1, 2], [1, 2], [2, 3], [2, 4]])
        lattice = AprioriMiner(0.25).mine(database).lattice
        rules = generate_rules(lattice, min_confidence=0.9)
        pairs = {(rule.antecedent, rule.consequent) for rule in rules}
        assert ((1,), (2,)) in pairs
        assert ((2,), (1,)) not in pairs

    def test_sorted_by_confidence_then_support(self, mined_lattice):
        rules = generate_rules(mined_lattice, min_confidence=0.4)
        keys = [(-rule.confidence, -rule.support) for rule in rules]
        assert keys == sorted(keys)

    def test_max_consequent_size(self, random_database_factory):
        database = random_database_factory(transactions=100, items=8, max_size=6)
        lattice = AprioriMiner(0.2).mine(database).lattice
        rules = generate_rules(lattice, 0.3, max_consequent_size=1)
        assert all(len(rule.consequent) == 1 for rule in rules)

    def test_empty_lattice_gives_no_rules(self):
        assert generate_rules(ItemsetLattice(database_size=10), 0.5) == []

    def test_singleton_only_lattice_gives_no_rules(self):
        lattice = ItemsetLattice({(1,): 5, (2,): 3}, database_size=10)
        assert generate_rules(lattice, 0.5) == []

    def test_rejects_bad_confidence(self, mined_lattice):
        with pytest.raises(InvalidThresholdError):
            generate_rules(mined_lattice, 0.0)
        with pytest.raises(InvalidThresholdError):
            generate_rules(mined_lattice, 1.5)

    def test_rule_string_rendering(self, mined_lattice):
        rules = generate_rules(mined_lattice, 0.5)
        assert rules, "expected at least one rule from the small database"
        text = str(rules[0])
        assert "=>" in text
        assert "confidence=" in text


class TestInterestMeasures:
    def test_confidence(self):
        assert rule_confidence(0.2, 0.4) == pytest.approx(0.5)
        assert rule_confidence(0.2, 0.0) == 0.0

    def test_lift_independence_is_one(self):
        assert rule_lift(0.25, 0.5, 0.5) == pytest.approx(1.0)

    def test_lift_positive_correlation(self):
        assert rule_lift(0.4, 0.5, 0.5) > 1.0

    def test_lift_zero_denominator(self):
        assert rule_lift(0.1, 0.0, 0.5) == 0.0

    def test_leverage_independence_is_zero(self):
        assert rule_leverage(0.25, 0.5, 0.5) == pytest.approx(0.0)

    def test_conviction_exact_rule_is_infinite(self):
        assert rule_conviction(1.0, 0.4) == float("inf")

    def test_conviction_typical_value(self):
        assert rule_conviction(0.75, 0.5) == pytest.approx(2.0)

    def test_rule_lift_matches_definition_in_generated_rules(self, small_database):
        lattice = AprioriMiner(0.3).mine(small_database).lattice
        size = len(small_database)
        for rule in generate_rules(lattice, 0.4):
            antecedent = small_database.count_itemset(rule.antecedent) / size
            consequent = small_database.count_itemset(rule.consequent) / size
            assert rule.lift == pytest.approx(rule.support / (antecedent * consequent))
            assert rule.leverage == pytest.approx(rule.support - antecedent * consequent)


class TestAssociationRuleDataclass:
    def test_items_property(self):
        rule = AssociationRule(
            antecedent=(2,),
            consequent=(1, 3),
            support=0.5,
            confidence=0.8,
            support_count=5,
            lift=1.2,
            leverage=0.1,
            conviction=2.0,
        )
        assert rule.items == (1, 2, 3)

"""Unit tests for association-rule generation and interest measures."""

from __future__ import annotations

import json

import pytest

from repro import AprioriMiner, TransactionDatabase, generate_rules
from repro.errors import InvalidThresholdError
from repro.mining.result import ItemsetLattice
from repro.mining.rules import (
    AssociationRule,
    diff_rules,
    rule_as_dict,
    rule_confidence,
    rule_conviction,
    rule_from_dict,
    rule_key,
    rule_leverage,
    rule_lift,
    validate_min_confidence,
)


@pytest.fixture
def mined_lattice(small_database) -> ItemsetLattice:
    return AprioriMiner(min_support=0.3).mine(small_database).lattice


class TestRuleGeneration:
    def test_rules_meet_confidence_threshold(self, mined_lattice):
        for rule in generate_rules(mined_lattice, min_confidence=0.7):
            assert rule.confidence >= 0.7

    def test_rule_statistics_are_consistent(self, small_database, mined_lattice):
        for rule in generate_rules(mined_lattice, min_confidence=0.5):
            joint = small_database.count_itemset(rule.items)
            antecedent = small_database.count_itemset(rule.antecedent)
            assert rule.support_count == joint
            assert rule.support == pytest.approx(joint / len(small_database))
            assert rule.confidence == pytest.approx(joint / antecedent)

    def test_antecedent_and_consequent_are_disjoint(self, mined_lattice):
        for rule in generate_rules(mined_lattice, min_confidence=0.5):
            assert not set(rule.antecedent) & set(rule.consequent)
            assert rule.items in mined_lattice

    def test_every_split_of_every_large_itemset_is_considered(self):
        # A fully deterministic database: {1, 2} in every transaction.
        database = TransactionDatabase([[1, 2]] * 4)
        lattice = AprioriMiner(0.5).mine(database).lattice
        rules = generate_rules(lattice, min_confidence=0.9)
        pairs = {(rule.antecedent, rule.consequent) for rule in rules}
        assert ((1,), (2,)) in pairs
        assert ((2,), (1,)) in pairs

    def test_confidence_filters_asymmetric_rules(self):
        # 1 => 2 holds strongly; 2 => 1 only half the time.
        database = TransactionDatabase([[1, 2], [1, 2], [2, 3], [2, 4]])
        lattice = AprioriMiner(0.25).mine(database).lattice
        rules = generate_rules(lattice, min_confidence=0.9)
        pairs = {(rule.antecedent, rule.consequent) for rule in rules}
        assert ((1,), (2,)) in pairs
        assert ((2,), (1,)) not in pairs

    def test_sorted_by_confidence_then_support(self, mined_lattice):
        rules = generate_rules(mined_lattice, min_confidence=0.4)
        keys = [(-rule.confidence, -rule.support) for rule in rules]
        assert keys == sorted(keys)

    def test_max_consequent_size(self, random_database_factory):
        database = random_database_factory(transactions=100, items=8, max_size=6)
        lattice = AprioriMiner(0.2).mine(database).lattice
        rules = generate_rules(lattice, 0.3, max_consequent_size=1)
        assert all(len(rule.consequent) == 1 for rule in rules)

    def test_max_consequent_size_caps_exactly(self):
        """The cap filters the unrestricted set — it never invents rules."""
        database = TransactionDatabase(
            [[1, 2, 3, 4]] * 6 + [[1, 2], [2, 3], [3, 4], [5]]
        )
        lattice = AprioriMiner(0.3).mine(database).lattice
        unrestricted = generate_rules(lattice, 0.3)
        assert any(len(rule.consequent) > 2 for rule in unrestricted)
        capped = generate_rules(lattice, 0.3, max_consequent_size=2)
        assert capped == [
            rule for rule in unrestricted if len(rule.consequent) <= 2
        ]

    def test_max_consequent_size_beyond_largest_is_a_noop(self, mined_lattice):
        assert generate_rules(mined_lattice, 0.4, max_consequent_size=100) == (
            generate_rules(mined_lattice, 0.4)
        )

    def test_equal_confidence_rules_order_deterministically(self):
        """Ties on (confidence, support) break on the antecedent, stably.

        The lattice is built by hand so that several rules share identical
        confidence and support; the serving layer and the maintenance diffs
        both rely on two generations over equal state being list-equal.
        """
        lattice = ItemsetLattice(database_size=100)
        for item in (1, 2, 3, 4):
            lattice.add((item,), 40)
        for pair in [(1, 2), (1, 3), (2, 4), (3, 4)]:
            lattice.add(pair, 20)  # every pair rule: confidence 0.5, support 0.2
        first = generate_rules(lattice, 0.4)
        second = generate_rules(lattice, 0.4)
        assert first == second
        assert len({(rule.confidence, rule.support) for rule in first}) == 1
        antecedents = [rule.antecedent for rule in first]
        assert antecedents == sorted(antecedents)

    def test_empty_lattice_gives_no_rules(self):
        assert generate_rules(ItemsetLattice(database_size=10), 0.5) == []

    def test_singleton_only_lattice_gives_no_rules(self):
        lattice = ItemsetLattice({(1,): 5, (2,): 3}, database_size=10)
        assert generate_rules(lattice, 0.5) == []

    def test_rejects_bad_confidence(self, mined_lattice):
        with pytest.raises(InvalidThresholdError):
            generate_rules(mined_lattice, 0.0)
        with pytest.raises(InvalidThresholdError):
            generate_rules(mined_lattice, 1.5)

    def test_rule_string_rendering(self, mined_lattice):
        rules = generate_rules(mined_lattice, 0.5)
        assert rules, "expected at least one rule from the small database"
        text = str(rules[0])
        assert "=>" in text
        assert "confidence=" in text


class TestInterestMeasures:
    def test_confidence(self):
        assert rule_confidence(0.2, 0.4) == pytest.approx(0.5)
        assert rule_confidence(0.2, 0.0) == 0.0

    def test_lift_independence_is_one(self):
        assert rule_lift(0.25, 0.5, 0.5) == pytest.approx(1.0)

    def test_lift_positive_correlation(self):
        assert rule_lift(0.4, 0.5, 0.5) > 1.0

    def test_lift_zero_denominator(self):
        assert rule_lift(0.1, 0.0, 0.5) == 0.0

    def test_leverage_independence_is_zero(self):
        assert rule_leverage(0.25, 0.5, 0.5) == pytest.approx(0.0)

    def test_conviction_exact_rule_is_infinite(self):
        assert rule_conviction(1.0, 0.4) == float("inf")

    def test_conviction_typical_value(self):
        assert rule_conviction(0.75, 0.5) == pytest.approx(2.0)

    def test_rule_lift_matches_definition_in_generated_rules(self, small_database):
        lattice = AprioriMiner(0.3).mine(small_database).lattice
        size = len(small_database)
        for rule in generate_rules(lattice, 0.4):
            antecedent = small_database.count_itemset(rule.antecedent) / size
            consequent = small_database.count_itemset(rule.consequent) / size
            assert rule.lift == pytest.approx(rule.support / (antecedent * consequent))
            assert rule.leverage == pytest.approx(rule.support - antecedent * consequent)


class TestAssociationRuleDataclass:
    def test_items_property(self):
        rule = AssociationRule(
            antecedent=(2,),
            consequent=(1, 3),
            support=0.5,
            confidence=0.8,
            support_count=5,
            lift=1.2,
            leverage=0.1,
            conviction=2.0,
        )
        assert rule.items == (1, 2, 3)


class TestValidateMinConfidence:
    def test_accepts_valid_floats(self):
        assert validate_min_confidence(0.5) == 0.5
        assert validate_min_confidence(1) == 1.0

    @pytest.mark.parametrize("value", [0.0, -0.1, 1.0001, 2])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(InvalidThresholdError):
            validate_min_confidence(value)

    @pytest.mark.parametrize("value", [True, False, "0.5", None])
    def test_rejects_non_numbers(self, value):
        """Booleans especially: ``True`` is an int to isinstance but not a threshold."""
        with pytest.raises(InvalidThresholdError):
            validate_min_confidence(value)


class TestRuleSerialization:
    def _exact_rule(self) -> AssociationRule:
        return AssociationRule(
            antecedent=(1,),
            consequent=(2,),
            support=0.4,
            confidence=1.0,
            support_count=4,
            lift=2.5,
            leverage=0.24,
            conviction=float("inf"),
        )

    def test_round_trip_preserves_every_field(self, mined_lattice):
        for rule in generate_rules(mined_lattice, 0.4):
            assert rule_from_dict(rule_as_dict(rule)) == rule

    def test_infinite_conviction_round_trips_through_strict_json(self):
        rule = self._exact_rule()
        payload = json.dumps(rule_as_dict(rule), allow_nan=False)  # valid JSON
        assert rule_from_dict(json.loads(payload)) == rule
        assert rule_from_dict(json.loads(payload)).conviction == float("inf")

    def test_finite_conviction_stays_a_number(self, mined_lattice):
        finite = [
            rule
            for rule in generate_rules(mined_lattice, 0.4)
            if rule.conviction != float("inf")
        ]
        assert finite
        for rule in finite:
            assert isinstance(rule_as_dict(rule)["conviction"], float)


class TestDiffRules:
    def _rule(self, antecedent, consequent, confidence=0.8, count=5) -> AssociationRule:
        return AssociationRule(
            antecedent=antecedent,
            consequent=consequent,
            support=count / 10,
            confidence=confidence,
            support_count=count,
            lift=1.0,
            leverage=0.0,
            conviction=1.0,
        )

    def test_partitions_added_removed_updated(self):
        stays = self._rule((1,), (2,))
        goes = self._rule((2,), (3,))
        drifts_before = self._rule((3,), (4,), confidence=0.8)
        drifts_after = self._rule((3,), (4,), confidence=0.9)
        arrives = self._rule((4,), (5,))
        diff = diff_rules([stays, goes, drifts_before], [stays, drifts_after, arrives])
        assert diff.added == [arrives]
        assert diff.removed == [goes]
        assert diff.updated == [(drifts_before, drifts_after)]
        assert diff.changed

    def test_support_count_drift_alone_is_an_update(self):
        before = self._rule((1,), (2,), count=5)
        after = self._rule((1,), (2,), count=6)
        diff = diff_rules([before], [after])
        assert diff.updated == [(before, after)]

    def test_identical_sets_do_not_differ(self, mined_lattice):
        rules = generate_rules(mined_lattice, 0.4)
        diff = diff_rules(rules, list(rules))
        assert not diff.changed
        assert diff.added == diff.removed == diff.updated == []

    def test_sorted_by_rule_key(self):
        rules = [self._rule((item,), (item + 1,)) for item in (3, 1, 2)]
        diff = diff_rules([], rules)
        assert [rule_key(rule) for rule in diff.added] == sorted(
            rule_key(rule) for rule in rules
        )

"""Unit tests for apriori_gen and its join/prune steps."""

from __future__ import annotations

from itertools import combinations

from repro.mining.candidates import (
    apriori_gen,
    generate_level_one_candidates,
    join_step,
    prune_by_subsets,
)


class TestLevelOneCandidates:
    def test_sorted_unique_singletons(self):
        assert generate_level_one_candidates([3, 1, 3, 2]) == [(1,), (2,), (3,)]

    def test_empty_universe(self):
        assert generate_level_one_candidates([]) == []


class TestJoinStep:
    def test_joins_singletons_into_pairs(self):
        assert join_step({(1,), (2,), (3,)}) == {(1, 2), (1, 3), (2, 3)}

    def test_joins_pairs_sharing_prefix(self):
        assert join_step({(1, 2), (1, 3), (2, 3)}) == {(1, 2, 3)}

    def test_no_join_without_shared_prefix(self):
        assert join_step({(1, 2), (3, 4)}) == set()

    def test_empty_input(self):
        assert join_step(set()) == set()


class TestPruneStep:
    def test_keeps_candidates_with_all_subsets(self):
        previous = {(1, 2), (1, 3), (2, 3)}
        assert prune_by_subsets({(1, 2, 3)}, previous) == {(1, 2, 3)}

    def test_drops_candidates_missing_a_subset(self):
        previous = {(1, 2), (1, 3)}  # (2, 3) missing
        assert prune_by_subsets({(1, 2, 3)}, previous) == set()

    def test_empty_candidates(self):
        assert prune_by_subsets(set(), {(1, 2)}) == set()


class TestAprioriGen:
    def test_classic_example(self):
        # From Agrawal & Srikant: L3 = {123, 124, 134, 135, 234};
        # join gives {1234, 1345}; prune removes 1345 because 145 is absent.
        level3 = {(1, 2, 3), (1, 2, 4), (1, 3, 4), (1, 3, 5), (2, 3, 4)}
        assert apriori_gen(level3) == {(1, 2, 3, 4)}

    def test_pairs_from_singletons(self):
        assert apriori_gen({(2,), (5,), (9,)}) == {(2, 5), (2, 9), (5, 9)}

    def test_empty_level(self):
        assert apriori_gen(set()) == set()

    def test_single_itemset_generates_nothing(self):
        assert apriori_gen({(1, 2)}) == set()

    def test_all_candidate_subsets_are_in_previous_level(self):
        previous = {
            (1, 2), (1, 3), (1, 4), (2, 3), (2, 4), (3, 4), (5, 6),
        }
        for candidate in apriori_gen(previous):
            for subset in combinations(candidate, len(candidate) - 1):
                assert subset in previous

    def test_superset_completeness(self):
        # Every itemset whose subsets are all present must be generated.
        previous = {(1, 2), (1, 3), (2, 3)}
        assert (1, 2, 3) in apriori_gen(previous)

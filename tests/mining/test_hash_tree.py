"""Unit tests for the hash tree (the Subset(C, T) primitive)."""

from __future__ import annotations

import random
from itertools import combinations

import pytest

from repro.mining.hash_tree import HashTree


class TestConstruction:
    def test_empty_tree(self):
        tree = HashTree()
        assert len(tree) == 0
        assert tree.subsets_in((1, 2, 3)) == []

    def test_insert_and_len(self):
        tree = HashTree([(1, 2), (2, 3)])
        assert len(tree) == 2
        assert tree.itemset_size == 2

    def test_iteration_returns_all_candidates(self):
        candidates = {(1, 2), (2, 3), (1, 5), (4, 9)}
        tree = HashTree(candidates)
        assert set(tree) == candidates

    def test_rejects_mixed_sizes(self):
        tree = HashTree([(1, 2)])
        with pytest.raises(ValueError):
            tree.insert((1, 2, 3))

    def test_rejects_bad_branching(self):
        with pytest.raises(ValueError):
            HashTree(branching=1)

    def test_rejects_bad_leaf_capacity(self):
        with pytest.raises(ValueError):
            HashTree(leaf_capacity=0)

    def test_contains(self):
        tree = HashTree([(1, 2), (3, 4)])
        assert tree.contains((1, 2))
        assert not tree.contains((2, 3))


class TestSubsetMatching:
    def test_matches_contained_candidates(self):
        tree = HashTree([(1, 2), (2, 3), (1, 4)])
        assert set(tree.subsets_in((1, 2, 3))) == {(1, 2), (2, 3)}

    def test_no_match_for_short_transaction(self):
        tree = HashTree([(1, 2, 3)])
        assert tree.subsets_in((1, 2)) == []

    def test_no_false_positives(self):
        tree = HashTree([(1, 9)])
        assert tree.subsets_in((1, 2, 3)) == []

    def test_each_candidate_reported_once(self):
        tree = HashTree([(1, 2)], branching=2)
        matches = tree.subsets_in((1, 2, 3, 4, 5, 6))
        assert matches.count((1, 2)) == 1

    def test_singleton_candidates(self):
        tree = HashTree([(1,), (5,), (9,)])
        assert set(tree.subsets_in((1, 9))) == {(1,), (9,)}

    def test_leaf_split_preserves_matches(self):
        # Force splits with a tiny leaf capacity and many colliding candidates.
        candidates = [(a, b) for a in range(0, 16, 2) for b in range(17, 33, 2) if a < b]
        tree = HashTree(candidates, branching=4, leaf_capacity=2)
        transaction = tuple(range(0, 33))
        assert set(tree.subsets_in(transaction)) == set(candidates)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("size", [1, 2, 3, 4])
    def test_matches_equal_brute_force(self, size):
        rng = random.Random(size * 101)
        universe = list(range(30))
        candidates = {
            tuple(sorted(rng.sample(universe, size))) for _ in range(60)
        }
        tree = HashTree(candidates, branching=5, leaf_capacity=3)
        for _ in range(50):
            transaction = tuple(sorted(rng.sample(universe, rng.randint(size, 12))))
            expected = {
                candidate
                for candidate in candidates
                if set(candidate).issubset(transaction)
            }
            assert set(tree.subsets_in(transaction)) == expected
            assert len(tree.subsets_in(transaction)) == len(expected)

    def test_counting_matches_itertools(self):
        rng = random.Random(99)
        universe = list(range(20))
        transactions = [
            tuple(sorted(rng.sample(universe, rng.randint(2, 10)))) for _ in range(100)
        ]
        candidates = {tuple(sorted(rng.sample(universe, 3))) for _ in range(40)}
        tree = HashTree(candidates)
        counts = {candidate: 0 for candidate in candidates}
        for transaction in transactions:
            for match in tree.subsets_in(transaction):
                counts[match] += 1
        for candidate in candidates:
            expected = sum(
                1
                for transaction in transactions
                if set(candidate).issubset(transaction)
            )
            assert counts[candidate] == expected

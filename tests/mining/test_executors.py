"""Tests of the partitioned engine's executors and the process-pool plumbing.

The contract under test: thread-mode and process-mode partitioned counting
are bit-for-bit interchangeable with each other and with the serial
single-partition engines, on every input — plus the machinery that makes
process mode cheap (content fingerprints, picklable shard payloads,
per-worker caching) behaves as documented.
"""

from __future__ import annotations

import os
import pickle
import signal
from concurrent.futures import BrokenExecutor

import pytest

from repro import (
    AprioriMiner,
    DhpMiner,
    DhpOptions,
    FupOptions,
    FupUpdater,
    MiningOptions,
    ReproError,
    RuleMaintainer,
    TransactionDatabase,
    VerticalIndex,
    make_backend,
)
from repro.mining.backends import (
    HorizontalBackend,
    PartitionedBackend,
    VerticalBackend,
)
from repro.mining.backends.process_pool import SHARD_CACHE_LIMIT, ShardWorkerPool

DATABASE = TransactionDatabase(
    [[1, 2, 3], [1, 2], [2, 4], [1, 3], [3, 4], [1, 2, 4], [], [5], [1, 2, 3, 4, 5]] * 3,
    name="executors-fixture",
)

CANDIDATES = [
    (1,),
    (2,),
    (5,),
    (9,),
    (1, 2),
    (1, 3),
    (2, 4),
    (4, 5),
    (1, 2, 3),
    (1, 2, 4),
    (1, 9),
]


@pytest.fixture(scope="module")
def process_backends():
    """One process-mode backend per inner engine, shared across the module.

    Sharing keeps the worker processes (and their shard caches) alive across
    tests, which both speeds the module up and exercises the cache-reuse
    path far more than fresh pools would.
    """
    backends = {
        "horizontal": PartitionedBackend(shards=4, executor="processes"),
        "vertical": PartitionedBackend(
            shards=4, inner=VerticalBackend(), executor="processes"
        ),
    }
    yield backends
    for backend in backends.values():
        backend.close()


def reference_counts(database):
    return {candidate: database.count_itemset(candidate) for candidate in CANDIDATES}


# --------------------------------------------------------------------- #
# Equivalence: processes ≡ threads ≡ serial, on every backend
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("inner_name", ["horizontal", "vertical"])
def test_process_executor_matches_threads_and_serial(inner_name, process_backends):
    serial = make_backend(inner_name)
    threaded = PartitionedBackend(
        shards=4, inner=make_backend(inner_name), executor="threads"
    )
    processes = process_backends[inner_name]

    expected = reference_counts(DATABASE)
    assert serial.count_candidates(DATABASE, CANDIDATES) == expected
    assert threaded.count_candidates(DATABASE, CANDIDATES) == expected
    assert processes.count_candidates(DATABASE, CANDIDATES) == expected

    assert processes.count_items(DATABASE) == DATABASE.item_counts()
    assert threaded.count_items(DATABASE) == DATABASE.item_counts()


def test_process_executor_counts_plain_transaction_lists(process_backends):
    processes = process_backends["horizontal"]
    as_list = list(DATABASE)
    assert processes.count_candidates(as_list, CANDIDATES) == reference_counts(DATABASE)
    assert processes.count_items(as_list) == DATABASE.item_counts()


def test_process_executor_empty_inputs(process_backends):
    processes = process_backends["horizontal"]
    empty = TransactionDatabase()
    assert processes.count_candidates(empty, [(1,), (1, 2)]) == {(1,): 0, (1, 2): 0}
    assert processes.count_candidates(empty, []) == {}
    assert processes.count_items(empty) == {}


def test_process_executor_tracks_database_mutation(process_backends):
    """A mutated database gets a new fingerprint, so workers recount fresh data."""
    processes = process_backends["horizontal"]
    database = DATABASE.copy()
    before = processes.count_candidates(database, CANDIDATES)
    database.extend([[1, 2, 3, 4]] * 5)
    after = processes.count_candidates(database, CANDIDATES)
    assert after == reference_counts(database)
    assert after != before
    database.remove_batch([[1, 2, 3, 4]] * 5)
    assert processes.count_candidates(database, CANDIDATES) == before


def test_worker_cache_eviction_keeps_counts_correct(process_backends):
    """More distinct shard generations than the cache holds still count right."""
    processes = process_backends["horizontal"]
    database = DATABASE.copy()
    for round_number in range(SHARD_CACHE_LIMIT + 3):
        database.append([round_number + 10, round_number + 11])
        assert processes.count_candidates(database, CANDIDATES) == reference_counts(
            database
        )


@pytest.mark.parametrize("min_support", [0.15, 0.4])
def test_miners_and_updaters_identical_across_executors(min_support):
    increment = TransactionDatabase([[1, 2, 4], [2, 5], [1, 2, 3, 4], [6, 7]])
    reference = AprioriMiner(min_support).mine(DATABASE)
    for executor in ("threads", "processes"):
        options = MiningOptions(backend="partitioned", shards=3, executor=executor)
        mined = AprioriMiner(min_support, options=options).mine(DATABASE)
        assert mined.lattice.supports() == reference.lattice.supports()

        dhp = DhpMiner(
            min_support,
            options=DhpOptions(backend="partitioned", shards=3, executor=executor),
        ).mine(DATABASE)
        assert dhp.lattice.supports() == reference.lattice.supports()

        fup = FupUpdater(
            min_support,
            options=FupOptions(backend="partitioned", shards=3, executor=executor),
        ).update(DATABASE, reference, increment)
        remined = AprioriMiner(min_support).mine(DATABASE.concatenate(increment))
        assert fup.lattice.supports() == remined.lattice.supports()


# --------------------------------------------------------------------- #
# Configuration plumbing
# --------------------------------------------------------------------- #
def test_executor_option_validation():
    with pytest.raises(ValueError):
        PartitionedBackend(executor="coroutines")
    with pytest.raises(ValueError):
        PartitionedBackend(workers=0)
    with pytest.raises(ReproError):
        MiningOptions(executor="coroutines")
    with pytest.raises(ValueError):
        MiningOptions(workers=0)
    with pytest.raises(ValueError):
        FupOptions(executor="coroutines")
    with pytest.raises(ValueError):
        DhpOptions(executor="coroutines")
    with pytest.raises(ValueError):
        ShardWorkerPool(lanes=0)


def test_explicit_backend_instance_is_shared(process_backends):
    """Miners/updaters accept a ready engine instance and use it as-is."""
    shared = process_backends["horizontal"]
    miner = DhpMiner(0.2, backend=shared)
    assert miner.backend is shared
    updater = FupUpdater(0.2, backend=shared)
    assert updater.backend is shared
    initial = AprioriMiner(0.2, options=shared).mine(DATABASE)
    increment = TransactionDatabase([[1, 2, 4], [2, 5]])
    updated = updater.update(DATABASE, initial, increment)
    remined = AprioriMiner(0.2).mine(DATABASE.concatenate(increment))
    assert updated.lattice.supports() == remined.lattice.supports()


def test_make_backend_threads_executor_through():
    backend = make_backend("partitioned", shards=5, executor="processes", workers=2)
    assert isinstance(backend, PartitionedBackend)
    assert (backend.shards, backend.executor, backend.workers) == (5, "processes", 2)
    assert backend.lanes == 2
    assert MiningOptions(
        backend="partitioned", executor="processes", workers=3
    ).make_backend().workers == 3


def test_workers_cap_fewer_lanes_than_shards(process_backends):
    capped = PartitionedBackend(shards=4, executor="processes", workers=2)
    try:
        assert capped.lanes == 2
        assert capped.count_candidates(DATABASE, CANDIDATES) == reference_counts(DATABASE)
        # Shards 0 and 2 share lane 0; 1 and 3 share lane 1 — count twice to
        # hit the shared-lane cached path as well.
        assert capped.count_candidates(DATABASE, CANDIDATES) == reference_counts(DATABASE)
    finally:
        capped.close()


def test_partitioned_backend_survives_pickling():
    backend = PartitionedBackend(shards=3, executor="processes", workers=2)
    try:
        backend.count_items(DATABASE)  # spin the pool up
        clone = pickle.loads(pickle.dumps(backend))
        assert (clone.shards, clone.executor, clone.workers) == (3, "processes", 2)
        assert clone._pool is None  # the live pool never crosses the boundary
        assert clone.count_candidates(DATABASE, CANDIDATES) == reference_counts(DATABASE)
        clone.close()
    finally:
        backend.close()


def test_close_is_idempotent_and_pool_respawns():
    backend = PartitionedBackend(shards=2, executor="processes")
    expected = reference_counts(DATABASE)
    assert backend.count_candidates(DATABASE, CANDIDATES) == expected
    backend.close()
    backend.close()
    assert backend.count_candidates(DATABASE, CANDIDATES) == expected
    backend.close()


def test_broken_worker_lane_respawns():
    """A worker killed from outside must not poison the backend forever."""
    backend = PartitionedBackend(shards=2, executor="processes")
    try:
        expected = reference_counts(DATABASE)
        assert backend.count_candidates(DATABASE, CANDIDATES) == expected
        for lane in backend._pool._executors:
            for process in list(lane._processes.values()):
                os.kill(process.pid, signal.SIGKILL)
        # The first call(s) may surface the breakage; within a few attempts
        # the lanes must have respawned and counting must be correct again.
        for _attempt in range(5):
            try:
                assert backend.count_candidates(DATABASE, CANDIDATES) == expected
                break
            except BrokenExecutor:
                continue
        else:
            pytest.fail("pool never recovered from killed workers")
    finally:
        backend.close()


def test_rule_maintainer_reuses_one_engine_across_batches():
    """A k-batch session must not respawn workers (or re-ship shards) per batch."""
    maintainer = RuleMaintainer(
        0.2,
        0.5,
        fup_options=FupOptions(backend="partitioned", shards=3, executor="processes"),
    )
    maintainer.initialise(DATABASE)
    backend = maintainer._fup_updater.backend
    maintainer.add_transactions([[1, 2], [2, 3]])
    pool = backend._pool
    assert pool is not None  # the first FUP batch spun the lanes up
    maintainer.add_transactions([[1, 4], [2, 4]])
    maintainer.remove_transactions([[1, 4]])
    assert maintainer._fup_updater.backend is backend
    assert backend._pool is pool  # same worker processes, batch after batch
    maintainer.close()
    assert backend._pool is None
    maintainer.close()  # idempotent
    # The maintainer stays usable: the engine respawns lanes on demand.
    maintainer.add_transactions([[3, 4]])
    maintainer.close()


def test_thread_mode_holds_no_pool():
    backend = PartitionedBackend(shards=4, executor="threads")
    backend.count_items(DATABASE)
    assert backend._pool is None
    backend.close()  # no-op


# --------------------------------------------------------------------- #
# Fingerprints and shard payloads
# --------------------------------------------------------------------- #
def test_fingerprint_identifies_content():
    database = DATABASE.copy()
    twin = DATABASE.copy()
    assert database.fingerprint() == twin.fingerprint()
    assert database.fingerprint() == database.fingerprint()  # cached

    database.append([42])
    assert database.fingerprint() != twin.fingerprint()
    twin.append([42])
    assert database.fingerprint() == twin.fingerprint()

    reordered = TransactionDatabase(list(reversed(list(DATABASE))))
    assert reordered.fingerprint() != DATABASE.fingerprint()


def test_shard_payload_round_trip():
    database = TransactionDatabase(list(DATABASE), name="payload-fixture")
    plain = TransactionDatabase.from_shard_payload(database.shard_payload())
    assert plain == database
    assert not plain.has_vertical_index

    database.vertical()  # build the index, then ship it along
    indexed = TransactionDatabase.from_shard_payload(database.shard_payload())
    assert indexed == database
    assert indexed.has_vertical_index
    assert dict(indexed.vertical()) == dict(database.vertical())


def test_vertical_index_payload_round_trip():
    index = VerticalIndex.build([(1, 2), (2,), (1,)])
    clone = VerticalIndex.from_payload(index.to_payload())
    assert dict(clone) == dict(index)
    assert clone.size == index.size
    clone.append((7,))  # independent after the round trip
    assert 7 not in index

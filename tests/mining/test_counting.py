"""Unit tests for the shared counting passes."""

from __future__ import annotations

from repro import TransactionDatabase
from repro.mining.counting import count_candidates, count_items, supports_as_fractions
from repro.mining.hash_tree import HashTree
from repro.mining.counting import count_candidates_with_tree


class TestCountItems:
    def test_counts_every_item(self, small_database):
        counts = count_items(small_database)
        assert counts[1] == 6
        assert counts[2] == 7
        assert counts[3] == 6
        assert counts[4] == 4

    def test_empty_database(self):
        assert count_items(TransactionDatabase()) == {}


class TestCountCandidates:
    def test_counts_match_reference(self, small_database):
        candidates = [(1, 2), (1, 3), (2, 4), (1, 2, 3)]
        counts = count_candidates(small_database, candidates)
        for candidate in candidates:
            assert counts[candidate] == small_database.count_itemset(candidate)

    def test_zero_support_candidates_are_reported(self, small_database):
        counts = count_candidates(small_database, [(1, 5)])
        assert counts[(1, 5)] == 0

    def test_no_candidates(self, small_database):
        assert count_candidates(small_database, []) == {}

    def test_with_prebuilt_tree(self, small_database):
        candidates = [(1, 2), (3, 4)]
        tree = HashTree(candidates)
        counts = {candidate: 0 for candidate in candidates}
        count_candidates_with_tree(small_database, tree, counts)
        assert counts[(1, 2)] == small_database.count_itemset((1, 2))
        assert counts[(3, 4)] == small_database.count_itemset((3, 4))


class TestSupportFractions:
    def test_fractions(self):
        fractions = supports_as_fractions({(1,): 3, (2,): 1}, 4)
        assert fractions[(1,)] == 0.75
        assert fractions[(2,)] == 0.25

    def test_zero_database_size(self):
        fractions = supports_as_fractions({(1,): 3}, 0)
        assert fractions[(1,)] == 0.0

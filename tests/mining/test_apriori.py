"""Unit tests for the Apriori baseline miner."""

from __future__ import annotations

from itertools import combinations

import pytest

from repro import AprioriMiner, TransactionDatabase, mine_apriori
from repro.errors import InvalidThresholdError


def brute_force_large_itemsets(database: TransactionDatabase, min_support: float):
    """Exhaustive reference: enumerate every itemset over the database's items."""
    threshold = AprioriMiner(min_support).required_count(len(database))
    items = sorted(database.items())
    expected = {}
    for size in range(1, len(items) + 1):
        found_any = False
        for candidate in combinations(items, size):
            count = database.count_itemset(candidate)
            if count >= threshold:
                expected[candidate] = count
                found_any = True
        if not found_any:
            break
    return expected


class TestAprioriBasics:
    def test_small_database(self, small_database):
        result = AprioriMiner(min_support=0.4).mine(small_database)
        # threshold = ceil(0.4 * 9) = 4
        assert result.support_count((1,)) == 6
        assert result.support_count((2,)) == 7
        assert result.support_count((1, 2)) == 5
        assert (1, 2, 3) not in result.lattice  # support 3 < 4

    def test_matches_brute_force(self, small_database):
        result = AprioriMiner(min_support=0.3).mine(small_database)
        assert result.lattice.supports() == brute_force_large_itemsets(small_database, 0.3)

    def test_matches_brute_force_random(self, random_database_factory):
        database = random_database_factory(transactions=120, items=10, max_size=6)
        result = AprioriMiner(min_support=0.15).mine(database)
        assert result.lattice.supports() == brute_force_large_itemsets(database, 0.15)

    def test_empty_database(self):
        result = AprioriMiner(min_support=0.5).mine(TransactionDatabase())
        assert len(result.lattice) == 0
        assert result.database_size == 0

    def test_full_support_threshold(self):
        database = TransactionDatabase([[1, 2], [1, 2], [1, 2]])
        result = AprioriMiner(min_support=1.0).mine(database)
        assert set(result.large_itemsets) == {(1,), (2,), (1, 2)}

    def test_nothing_frequent(self):
        database = TransactionDatabase([[1], [2], [3], [4]])
        result = AprioriMiner(min_support=0.75).mine(database)
        assert result.large_itemsets == []

    def test_downward_closure_holds(self, random_database_factory):
        database = random_database_factory(transactions=150, items=12)
        result = AprioriMiner(min_support=0.1).mine(database)
        assert result.lattice.violates_downward_closure() == []

    def test_max_itemset_size_cap(self, small_database):
        result = AprioriMiner(min_support=0.3, max_itemset_size=1).mine(small_database)
        assert result.lattice.max_size() == 1

    def test_convenience_wrapper(self, small_database):
        assert (
            mine_apriori(small_database, 0.4).lattice.supports()
            == AprioriMiner(0.4).mine(small_database).lattice.supports()
        )


class TestAprioriValidation:
    @pytest.mark.parametrize("bad", [0.0, -1, 2.0])
    def test_rejects_bad_support(self, bad):
        with pytest.raises(InvalidThresholdError):
            AprioriMiner(bad)

    def test_rejects_bad_max_size(self):
        with pytest.raises(ValueError):
            AprioriMiner(0.5, max_itemset_size=0)


class TestAprioriInstrumentation:
    def test_scan_and_candidate_accounting(self, small_database):
        result = AprioriMiner(min_support=0.3).mine(small_database)
        assert result.database_scans == len(result.candidates_per_level)
        assert result.increment_scans == 0
        assert result.transactions_read == result.database_scans * len(small_database)
        assert result.candidates_generated == sum(result.candidates_per_level.values())

    def test_level_one_candidates_are_all_items(self, small_database):
        result = AprioriMiner(min_support=0.3).mine(small_database)
        assert result.candidates_per_level[1] == len(small_database.items())

    def test_elapsed_time_recorded(self, small_database):
        assert AprioriMiner(0.3).mine(small_database).elapsed_seconds > 0

"""Tests of the pluggable counting backends.

The central contract: every engine returns byte-identical support counts for
any (transactions, candidates) input, and every miner/updater produces
identical large itemsets and supports regardless of the engine it runs on.
The slow-but-obviously-correct ``TransactionDatabase.count_itemset`` scan is
the oracle.
"""

from __future__ import annotations

import pytest

from repro import (
    BACKEND_NAMES,
    AprioriMiner,
    DhpMiner,
    DhpOptions,
    Fup2Updater,
    FupOptions,
    FupUpdater,
    MiningOptions,
    ReproError,
    TransactionDatabase,
    make_backend,
)
from repro.mining.backends import (
    HorizontalBackend,
    PartitionedBackend,
    VerticalBackend,
    build_vertical_index,
    split_into_shards,
)

BACKENDS = list(BACKEND_NAMES)


@pytest.fixture()
def database() -> TransactionDatabase:
    return TransactionDatabase(
        [
            [1, 2, 3],
            [1, 2],
            [2, 4],
            [1, 3],
            [3, 4],
            [1, 2, 4],
            [],
            [5],
            [1, 2, 3, 4, 5],
        ],
        name="fixture",
    )


CANDIDATES = [
    (1,),
    (2,),
    (5,),
    (9,),  # zero support
    (1, 2),
    (1, 3),
    (2, 4),
    (4, 5),  # zero support beyond the kitchen-sink transaction
    (1, 2, 3),
    (1, 2, 4),
    (1, 9),  # zero support with one unknown item
]


def reference_counts(database: TransactionDatabase) -> dict[tuple[int, ...], int]:
    return {candidate: database.count_itemset(candidate) for candidate in CANDIDATES}


# --------------------------------------------------------------------- #
# Engine-level equivalence
# --------------------------------------------------------------------- #
@pytest.mark.parametrize("name", BACKENDS)
def test_count_candidates_matches_oracle(name, database):
    backend = make_backend(name, shards=3)
    assert backend.count_candidates(database, CANDIDATES) == reference_counts(database)


@pytest.mark.parametrize("name", BACKENDS)
def test_count_candidates_accepts_plain_transaction_lists(name, database):
    backend = make_backend(name, shards=3)
    as_list = list(database)
    assert backend.count_candidates(as_list, CANDIDATES) == reference_counts(database)


@pytest.mark.parametrize("name", BACKENDS)
def test_count_items_matches_database_item_counts(name, database):
    backend = make_backend(name, shards=3)
    assert backend.count_items(database) == database.item_counts()


@pytest.mark.parametrize("name", BACKENDS)
def test_count_candidates_empty_inputs(name):
    backend = make_backend(name, shards=3)
    empty = TransactionDatabase()
    assert backend.count_candidates(empty, [(1,), (1, 2)]) == {(1,): 0, (1, 2): 0}
    assert backend.count_candidates(empty, []) == {}
    assert backend.count_items(empty) == {}


@pytest.mark.parametrize("name", BACKENDS)
def test_count_pools_splits_like_separate_counts(name, database):
    backend = make_backend(name, shards=3)
    pool_a = [(1,), (1, 2)]
    pool_b = [(2, 4), (9,)]
    counted_a, counted_b = backend.count_pools(database, [pool_a, pool_b])
    assert counted_a == backend.count_candidates(database, pool_a)
    assert counted_b == backend.count_candidates(database, pool_b)


def test_make_backend_rejects_unknown_names():
    with pytest.raises(ReproError):
        make_backend("columnar")
    with pytest.raises(ReproError):
        MiningOptions(backend="columnar")


def test_make_backend_passes_instances_through():
    engine = VerticalBackend()
    assert make_backend(engine) is engine


def test_partitioned_backend_shard_knob():
    assert PartitionedBackend(shards=7).shards == 7
    with pytest.raises(ValueError):
        PartitionedBackend(shards=0)
    with pytest.raises(ValueError):
        MiningOptions(shards=0)


def test_partitioned_more_shards_than_transactions(database):
    backend = PartitionedBackend(shards=64)
    assert backend.count_candidates(database, CANDIDATES) == reference_counts(database)


def test_partitioned_inner_engine_is_swappable(database):
    backend = PartitionedBackend(shards=2, inner=VerticalBackend())
    assert backend.count_candidates(database, CANDIDATES) == reference_counts(database)


def test_split_into_shards_covers_in_order():
    rows = [(i,) for i in range(10)]
    parts = split_into_shards(rows, 3)
    assert [len(part) for part in parts] == [4, 3, 3]
    assert [row for part in parts for row in part] == rows
    assert split_into_shards([], 3) == []


# --------------------------------------------------------------------- #
# The vertical representation and its cache
# --------------------------------------------------------------------- #
def test_build_vertical_index_bit_semantics():
    index = build_vertical_index([(1, 2), (2,), (1,)])
    assert index == {1: 0b101, 2: 0b011}


def test_database_vertical_is_cached_and_delta_maintained(database):
    first = database.vertical()
    assert database.vertical() is first  # cached

    database.append([1, 7])
    maintained = database.vertical()
    assert maintained is first  # maintained in place, never rebuilt
    assert maintained[7].bit_count() == 1

    database.extend([[7], [7]])
    assert database.vertical()[7].bit_count() == 3

    database.remove_batch([[1, 7]])
    assert database.vertical()[7].bit_count() == 2
    assert dict(database.vertical()) == build_vertical_index(database.transactions())


def test_database_partition_balanced_and_distributive(database):
    shards = database.partition(4)
    assert sum(len(shard) for shard in shards) == len(database)
    sizes = [len(shard) for shard in shards]
    assert max(sizes) - min(sizes) <= 1
    assert [t for shard in shards for t in shard] == list(database)
    for candidate in CANDIDATES:
        assert database.count_itemset(candidate) == sum(
            shard.count_itemset(candidate) for shard in shards
        )
    with pytest.raises(ValueError):
        database.partition(0)


# --------------------------------------------------------------------- #
# Miner / updater equivalence across engines
# --------------------------------------------------------------------- #
MINE_DB = TransactionDatabase(
    [[1, 2, 3, 4], [1, 2, 4], [2, 3], [1, 4], [2, 4, 5], [1, 2, 3], [3, 5], [1, 2, 4, 5]] * 3
)
INCREMENT = TransactionDatabase([[1, 2, 4], [2, 5], [1, 2, 3, 4], [6, 7], [6, 7]])
DELETIONS = TransactionDatabase([[2, 3], [3, 5]])
SUPPORTS = [0.15, 0.3, 0.55]


def _options(name: str) -> MiningOptions:
    return MiningOptions(backend=name, shards=3)


@pytest.mark.parametrize("min_support", SUPPORTS)
@pytest.mark.parametrize("name", BACKENDS)
def test_apriori_identical_across_backends(name, min_support):
    reference = AprioriMiner(min_support).mine(MINE_DB)
    result = AprioriMiner(min_support, options=_options(name)).mine(MINE_DB)
    assert result.lattice.supports() == reference.lattice.supports()
    assert result.candidates_per_level == reference.candidates_per_level
    assert result.database_scans == reference.database_scans


@pytest.mark.parametrize("min_support", SUPPORTS)
@pytest.mark.parametrize("name", BACKENDS)
def test_dhp_identical_across_backends(name, min_support):
    reference = DhpMiner(min_support).mine(MINE_DB)
    options = DhpOptions(backend=name, shards=3)
    result = DhpMiner(min_support, options=options).mine(MINE_DB)
    assert result.lattice.supports() == reference.lattice.supports()


@pytest.mark.parametrize("min_support", SUPPORTS)
@pytest.mark.parametrize("name", BACKENDS)
def test_fup_identical_across_backends(name, min_support):
    initial = AprioriMiner(min_support).mine(MINE_DB)
    reference = FupUpdater(min_support).update(MINE_DB, initial, INCREMENT)
    options = FupOptions(backend=name, shards=3)
    result = FupUpdater(min_support, options=options).update(MINE_DB, initial, INCREMENT)
    assert result.lattice.supports() == reference.lattice.supports()


@pytest.mark.parametrize("min_support", SUPPORTS)
@pytest.mark.parametrize("name", BACKENDS)
def test_fup2_identical_across_backends(name, min_support):
    initial = AprioriMiner(min_support).mine(MINE_DB)
    reference = Fup2Updater(min_support).update(MINE_DB, initial, INCREMENT, DELETIONS)
    result = Fup2Updater(min_support, options=_options(name)).update(
        MINE_DB, initial, INCREMENT, DELETIONS
    )
    assert result.lattice.supports() == reference.lattice.supports()


@pytest.mark.parametrize("name", BACKENDS)
def test_fup_backends_agree_with_remining(name):
    min_support = 0.2
    initial = AprioriMiner(min_support).mine(MINE_DB)
    options = FupOptions(backend=name, shards=3)
    updated = FupUpdater(min_support, options=options).update(MINE_DB, initial, INCREMENT)
    remined = AprioriMiner(min_support).mine(MINE_DB.concatenate(INCREMENT))
    assert updated.lattice.supports() == remined.lattice.supports()


def test_horizontal_is_the_only_pruning_backend():
    assert HorizontalBackend().supports_transaction_pruning
    assert not VerticalBackend().supports_transaction_pruning
    assert not PartitionedBackend().supports_transaction_pruning

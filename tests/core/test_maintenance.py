"""Unit and integration tests for the RuleMaintainer."""

from __future__ import annotations

from collections import Counter

import pytest

from repro import (
    BACKEND_NAMES,
    AprioriMiner,
    FupOptions,
    RuleMaintainer,
    TransactionDatabase,
    UpdateBatch,
    generate_rules,
)
from repro.db.transaction_db import build_vertical_index
from repro.errors import EmptyDatabaseError, InvalidThresholdError, StaleStateError


@pytest.fixture
def maintainer(small_database) -> RuleMaintainer:
    maintainer = RuleMaintainer(min_support=0.3, min_confidence=0.6)
    maintainer.initialise(small_database)
    return maintainer


class TestInitialisation:
    def test_initial_state_matches_apriori(self, small_database, maintainer):
        expected = AprioriMiner(0.3).mine(small_database)
        assert maintainer.result.lattice.supports() == expected.lattice.supports()
        assert maintainer.rules == generate_rules(expected.lattice, 0.6)

    def test_initialise_accepts_raw_transactions(self):
        maintainer = RuleMaintainer(0.5, 0.5)
        maintainer.initialise([[1, 2], [1, 2], [3]])
        assert (1, 2) in maintainer.result.lattice

    def test_initialise_with_dhp(self, small_database):
        maintainer = RuleMaintainer(0.3, 0.6, miner="dhp")
        maintainer.initialise(small_database)
        expected = AprioriMiner(0.3).mine(small_database)
        assert maintainer.result.lattice.supports() == expected.lattice.supports()

    def test_uninitialised_access_raises(self):
        maintainer = RuleMaintainer(0.3, 0.6)
        assert not maintainer.is_initialised
        with pytest.raises(EmptyDatabaseError):
            _ = maintainer.result
        with pytest.raises(EmptyDatabaseError):
            _ = maintainer.database
        with pytest.raises(EmptyDatabaseError):
            _ = maintainer.rules

    def test_initialise_copies_the_database(self, small_database):
        maintainer = RuleMaintainer(0.3, 0.6)
        maintainer.initialise(small_database)
        maintainer.add_transactions([[9, 9]])
        assert len(small_database) == 9  # caller's database untouched

    def test_validation_of_thresholds(self):
        with pytest.raises(InvalidThresholdError):
            RuleMaintainer(0.0, 0.5)
        with pytest.raises(InvalidThresholdError):
            RuleMaintainer(0.5, 1.5)

    def test_confidence_validation_matches_generate_rules(self):
        """One validator serves both entry points: booleans are rejected too."""
        with pytest.raises(InvalidThresholdError):
            RuleMaintainer(0.5, True)
        with pytest.raises(InvalidThresholdError):
            RuleMaintainer(0.5, "0.5")
        with pytest.raises(InvalidThresholdError):
            RuleMaintainer(0.5, 0.0)

    def test_validation_of_miner_name(self):
        with pytest.raises(ValueError):
            RuleMaintainer(0.5, 0.5, miner="eclat")

    def test_validation_of_remine_factor(self):
        with pytest.raises(ValueError):
            RuleMaintainer(0.5, 0.5, remine_increment_factor=0)


class TestInsertions:
    def test_insert_only_uses_fup(self, maintainer, small_increment):
        report = maintainer.add_transactions(list(small_increment), label="batch-1")
        assert report.algorithm == "fup"
        assert report.inserted_transactions == len(small_increment)
        assert report.database_size == 9 + len(small_increment)

    def test_state_matches_full_remine_after_insert(self, maintainer, small_database, small_increment):
        maintainer.add_transactions(list(small_increment))
        remined = AprioriMiner(0.3).mine(small_database.concatenate(small_increment))
        assert maintainer.result.lattice.supports() == remined.lattice.supports()
        assert maintainer.rules == generate_rules(remined.lattice, 0.6)

    def test_successive_increments(self, random_database_factory):
        database = random_database_factory(transactions=240, items=14, seed=2)
        maintainer = RuleMaintainer(0.1, 0.5)
        maintainer.initialise(database.slice(0, 120))
        for start in (120, 160, 200):
            maintainer.add_transactions(list(database.slice(start, start + 40)))
        remined = AprioriMiner(0.1).mine(database)
        assert maintainer.result.lattice.supports() == remined.lattice.supports()

    def test_report_tracks_new_and_lost_itemsets(self, maintainer):
        # The increment floods the database with item 7, creating new large
        # itemsets and demoting the old ones.
        report = maintainer.add_transactions([[7, 8]] * 30)
        assert (7,) in report.itemsets_added
        assert report.itemsets_removed  # old itemsets fell below threshold
        assert report.itemsets_changed

    def test_report_tracks_rule_changes(self, maintainer):
        report = maintainer.add_transactions([[7, 8]] * 30)
        assert any(rule.items == (7, 8) for rule in report.rules_added)
        assert report.rules_changed

    def test_remine_fallback_for_huge_increment(self, small_database):
        maintainer = RuleMaintainer(0.3, 0.6, remine_increment_factor=1.0)
        maintainer.initialise(small_database)
        report = maintainer.add_transactions([[1, 2]] * 30)  # > 1x database size
        assert report.algorithm == "remine-apriori"
        remined = AprioriMiner(0.3).mine(maintainer.database)
        assert maintainer.result.lattice.supports() == remined.lattice.supports()


class TestDeletions:
    def test_delete_only_uses_fup2(self, maintainer, small_database):
        report = maintainer.remove_transactions([list(small_database[0])], label="gc")
        assert report.algorithm == "fup2"
        assert report.deleted_transactions == 1
        assert report.database_size == 8

    def test_state_matches_remine_after_delete(self, maintainer, small_database):
        maintainer.remove_transactions([list(small_database[0])])
        remined = AprioriMiner(0.3).mine(small_database.slice(1))
        assert maintainer.result.lattice.supports() == remined.lattice.supports()

    def test_deleting_a_phantom_transaction_is_refused(self, maintainer):
        before = maintainer.result.lattice.supports()
        size = len(maintainer.database)
        with pytest.raises(StaleStateError):
            maintainer.remove_transactions([[98, 99]], label="phantom")
        # The refused batch must leave the maintained state untouched.
        assert maintainer.result.lattice.supports() == before
        assert len(maintainer.database) == size
        assert len(maintainer.update_log) == 0

    def test_deleting_more_copies_than_stored_is_refused(self, maintainer, small_database):
        duplicates = [list(small_database[0])] * (len(small_database) + 1)
        with pytest.raises(StaleStateError):
            maintainer.remove_transactions(duplicates)

    def test_phantom_check_uses_the_maintained_multiset(self, maintainer, small_database):
        # The O(d) pre-check builds the transaction multiset once; every later
        # deletion batch validates against the delta-maintained copy instead
        # of rebuilding anything O(|DB|).
        maintainer.remove_transactions([list(small_database[0])])
        database = maintainer.database
        assert database.has_transaction_multiset
        maintainer.add_transactions([[1, 2, 9]])
        maintainer.remove_transactions([[1, 2, 9]])
        assert database.transaction_multiset() == Counter(database.transactions())

    def test_refused_phantom_leaves_multiset_consistent(self, maintainer):
        with pytest.raises(StaleStateError):
            maintainer.remove_transactions([[98, 99]])
        database = maintainer.database
        assert database.transaction_multiset() == Counter(database.transactions())


class TestRestore:
    def test_restore_reproduces_saved_state(self, maintainer, small_database):
        restored = RuleMaintainer(0.3, 0.6)
        restored.restore(small_database.copy(), maintainer.result.lattice.copy())
        assert restored.result.lattice.supports() == maintainer.result.lattice.supports()
        assert [str(r) for r in restored.rules] == [str(r) for r in maintainer.rules]
        # ... and the restored maintainer keeps maintaining.
        report = restored.add_transactions([[1, 2]], label="after-restore")
        assert report.database_size == len(small_database) + 1

    def test_restore_rejects_mismatched_database(self, maintainer, small_database):
        restored = RuleMaintainer(0.3, 0.6)
        with pytest.raises(StaleStateError):
            restored.restore(small_database.slice(0, 4), maintainer.result.lattice.copy())

    def test_mixed_batch(self, maintainer, small_database):
        batch = UpdateBatch.from_iterables(
            insertions=[[1, 4], [1, 4], [2, 4]],
            deletions=[list(small_database[0])],
            label="mixed",
        )
        report = maintainer.apply(batch)
        assert report.algorithm == "fup2"
        expected = small_database.slice(1).concatenate(
            TransactionDatabase([[1, 4], [1, 4], [2, 4]])
        )
        remined = AprioriMiner(0.3).mine(expected)
        assert maintainer.result.lattice.supports() == remined.lattice.supports()


class TestStatDrift:
    """The rules_updated bugfix: statistics drift must not read as 'unchanged'."""

    def test_surviving_rule_with_drifted_stats_is_reported(self):
        maintainer = RuleMaintainer(0.3, 0.6)
        maintainer.initialise([[1, 2]] * 6 + [[1], [2], [3], [3]])
        before = {rule for rule in maintainer.rules}
        # Reinforce {1}=>{2} (and every 1-itemset's share): the rule set's
        # membership stays identical while every statistic moves.
        report = maintainer.add_transactions([[1, 2]] * 2, label="drift")
        assert {(r.antecedent, r.consequent) for r in maintainer.rules} == {
            (r.antecedent, r.consequent) for r in before
        }
        assert report.rules_added == []
        assert report.rules_removed == []
        assert report.rules_updated, "stat drift silently dropped"
        assert report.rules_changed  # the fixed property sees the drift
        for old, new in report.rules_updated:
            assert (old.antecedent, old.consequent) == (new.antecedent, new.consequent)
            assert old != new
        assert report.summary()["rules_updated"] == len(report.rules_updated)

    def test_report_matches_diff_rules(self, maintainer):
        """The report's three rule lists are exactly diff_rules(before, after)."""
        from repro.mining.rules import diff_rules

        before = maintainer.rules
        report = maintainer.add_transactions([[1, 2, 3]] * 3, label="grow")
        diff = diff_rules(before, maintainer.rules)
        assert report.rules_added == diff.added
        assert report.rules_removed == diff.removed
        assert report.rules_updated == diff.updated

    def test_unchanged_state_reports_no_drift(self, maintainer):
        """Applying and reverting leaves statistics identical: no updates."""
        maintainer.add_transactions([[1, 2, 4]], label="add")
        report = maintainer.remove_transactions([[1, 2, 4]], label="undo")
        # After the revert the lattice matches the original state, so a rule
        # can only appear in updated if its statistics truly differ.
        for old, new in report.rules_updated:
            assert old != new


class TestBookkeeping:
    def test_empty_batch_is_noop(self, maintainer):
        before = maintainer.result.lattice.supports()
        report = maintainer.apply(UpdateBatch())
        assert report.algorithm == "noop"
        assert maintainer.result.lattice.supports() == before

    def test_empty_batch_skips_log_rules_and_sequence(self, maintainer):
        """A no-op batch regenerates nothing and leaves no trace in the log."""
        rules_before = maintainer.rules
        report = maintainer.apply(UpdateBatch(label="nothing"))
        assert len(maintainer.update_log) == 0
        assert maintainer.sequence == 0
        assert maintainer.rules == rules_before
        assert report.database_size == len(maintainer.database)
        assert not report.rules_changed
        assert not report.itemsets_changed

    def test_sequence_counts_applied_batches(self, maintainer, small_increment):
        assert maintainer.sequence == 0
        maintainer.add_transactions(list(small_increment), label="a")
        assert maintainer.sequence == 1
        maintainer.apply(UpdateBatch())  # no-op: sequence must not advance
        assert maintainer.sequence == 1
        maintainer.remove_transactions([[1, 2, 3]], label="b")
        assert maintainer.sequence == 2

    def test_update_log_records_batches(self, maintainer, small_increment):
        maintainer.add_transactions(list(small_increment), label="a")
        maintainer.remove_transactions([[1, 2, 3]], label="b")
        assert len(maintainer.update_log) == 2
        assert [batch.label for batch in maintainer.update_log] == ["a", "b"]
        assert maintainer.update_log.total_insertions == len(small_increment)
        assert maintainer.update_log.total_deletions == 1

    def test_report_summary_fields(self, maintainer, small_increment):
        report = maintainer.add_transactions(list(small_increment), label="day-1")
        summary = report.summary()
        assert summary["batch"] == "day-1"
        assert summary["inserted"] == len(small_increment)
        assert summary["deleted"] == 0
        assert summary["database_size"] == maintainer.database.size

    def test_large_itemsets_property(self, maintainer):
        assert maintainer.large_itemsets == maintainer.result.large_itemsets

    def test_rules_property_returns_copy(self, maintainer):
        rules = maintainer.rules
        rules.clear()
        assert maintainer.rules  # internal list unaffected


class TestBackendEquivalence:
    """A mixed insert/delete session ends identically on every engine."""

    def _run_session(self, database, backend: str) -> RuleMaintainer:
        maintainer = RuleMaintainer(
            0.1, 0.5, fup_options=FupOptions(backend=backend, shards=3)
        )
        maintainer.initialise(database.slice(0, 120))
        maintainer.add_transactions(list(database.slice(120, 160)), label="insert-1")
        maintainer.apply(
            UpdateBatch.from_iterables(
                insertions=list(database.slice(160, 200)),
                deletions=list(database.slice(0, 20)),
                label="mixed",
            )
        )
        maintainer.remove_transactions(list(database.slice(20, 30)), label="delete")
        maintainer.add_transactions(list(database.slice(200, 240)), label="insert-2")
        return maintainer

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_session_matches_horizontal_and_remine(self, backend, random_database_factory):
        database = random_database_factory(transactions=240, items=14, seed=5)
        maintainer = self._run_session(database, backend)
        reference = self._run_session(database, "horizontal")
        assert (
            maintainer.result.lattice.supports() == reference.result.lattice.supports()
        )
        assert maintainer.rules == reference.rules
        remined = AprioriMiner(0.1).mine(maintainer.database)
        assert maintainer.result.lattice.supports() == remined.lattice.supports()

    def test_vertical_session_maintains_one_index_across_batches(
        self, random_database_factory
    ):
        database = random_database_factory(transactions=240, items=14, seed=5)
        maintainer = self._run_session(database, "vertical")
        maintained = maintainer.database
        assert maintained.has_vertical_index  # built once by the first update
        assert dict(maintained.vertical()) == build_vertical_index(
            maintained.transactions()
        )

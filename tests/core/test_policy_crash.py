"""Fault injection at eviction time: crash mid-eviction, replay, converge.

The sliding-window policy turns plain insertion batches into mixed
insert+delete batches (the evictions).  The journal records the *original*
batch, so crash recovery replays it through the restored policy, which must
re-plan byte-identical evictions — the deletion path's historical failure
mode is a phantom :class:`~repro.errors.StaleStateError` when replayed
evictions try to remove transactions the crashed process already removed
(double eviction) or never removed (lost eviction).

Both flavours of the ingest crash tier are reused: an in-process raise at
the ``after-journal-before-apply`` point (journal holds the batch, the
maintainer never saw it) and a real ``SIGKILL`` of a ``repro session
apply`` subprocess.  The oracle is a clean twin session fed the same
batches with no crash: transactions, supports and rules must all match.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

import repro.faults as faults
from repro import (
    AprioriMiner,
    MaintenanceSession,
    SlidingWindowPolicy,
    TransactionDatabase,
    UpdateBatch,
    save_database,
)
from repro.faults import CRASH_POINT_ENV, InjectedCrash

BASE = [
    [1, 2, 3],
    [1, 2],
    [2, 3],
    [1, 3],
    [1, 2, 3],
    [2, 4],
    [3, 4],
    [1, 2, 4],
    [1, 4],
    [2, 3, 4],
]
WINDOW = len(BASE)
BATCHES = [
    [[1, 2, 4], [2, 3, 4]],
    [[1, 3, 4], [1, 2, 3, 4]],
    [[2, 4], [1, 2]],
]

SRC_DIR = Path(__file__).resolve().parents[2] / "src"


def _make_session(directory: Path) -> MaintenanceSession:
    return MaintenanceSession.create(
        directory,
        BASE,
        min_support=0.2,
        min_confidence=0.5,
        checkpoint_interval=100,
        policy=SlidingWindowPolicy(WINDOW),
    )


def _clean_twin(directory: Path, batches) -> MaintenanceSession:
    session = _make_session(directory)
    for index, rows in enumerate(batches):
        session.apply(UpdateBatch.from_iterables(insertions=rows, label=f"batch-{index}"))
    return session


def _assert_matches_twin(session: MaintenanceSession, twin: MaintenanceSession) -> None:
    assert session.database.transactions() == twin.database.transactions()
    assert session.result.lattice.supports() == twin.result.lattice.supports()
    assert session.rules == twin.rules


class TestRaiseAtEvictionTime:
    def test_recovery_replays_identical_evictions(self, tmp_path, monkeypatch):
        monkeypatch.setattr(faults, "_HITS", {})
        twin = _clean_twin(tmp_path / "twin", BATCHES[:2])

        crash_dir = tmp_path / "crash"
        session = _make_session(crash_dir)
        session.apply(UpdateBatch.from_iterables(insertions=BATCHES[0], label="batch-0"))

        # The second batch is journaled but dies before the maintainer (and
        # therefore before the policy's evictions) touches any state.
        monkeypatch.setenv(CRASH_POINT_ENV, "after-journal-before-apply:raise:0")
        with pytest.raises(InjectedCrash):
            session.apply(UpdateBatch.from_iterables(insertions=BATCHES[1], label="batch-1"))
        session.close()  # write-free: on-disk state equals a process kill
        monkeypatch.delenv(CRASH_POINT_ENV)

        with MaintenanceSession.open(crash_dir) as session:
            assert session.applied_seq == 2  # the journaled batch was replayed
            assert len(session.database) == WINDOW
            _assert_matches_twin(session, twin)
            twin.close()

            # The maintained lattice equals a from-scratch mine of the window.
            remined = AprioriMiner(0.2).mine(TransactionDatabase(session.database.transactions()))
            assert session.result.lattice.supports() == remined.lattice.supports()

            # A post-recovery batch carrying *user* deletions must go through
            # cleanly: replayed evictions already left the database, so the
            # deletions still resolve — no phantom StaleStateError.
            survivors = [list(t) for t in session.database.transactions()[:2]]
            report = session.apply(
                UpdateBatch.from_iterables(
                    insertions=BATCHES[2], deletions=survivors, label="post"
                )
            )
            assert report.database_size == WINDOW
            assert report.evicted_transactions == 0  # deletions freed the room

    def test_double_crash_still_converges(self, tmp_path, monkeypatch):
        """Crash, recover, crash again on the next eviction batch, recover."""
        monkeypatch.setattr(faults, "_HITS", {})
        twin = _clean_twin(tmp_path / "twin", BATCHES)

        crash_dir = tmp_path / "crash"
        session = _make_session(crash_dir)
        session.apply(UpdateBatch.from_iterables(insertions=BATCHES[0], label="batch-0"))
        monkeypatch.setenv(CRASH_POINT_ENV, "after-journal-before-apply:raise:0")
        with pytest.raises(InjectedCrash):
            session.apply(UpdateBatch.from_iterables(insertions=BATCHES[1], label="batch-1"))
        session.close()
        monkeypatch.delenv(CRASH_POINT_ENV)

        monkeypatch.setattr(faults, "_HITS", {})
        session = MaintenanceSession.open(crash_dir)  # replays batch-1
        monkeypatch.setenv(CRASH_POINT_ENV, "after-journal-before-apply:raise:0")
        with pytest.raises(InjectedCrash):
            session.apply(UpdateBatch.from_iterables(insertions=BATCHES[2], label="batch-2"))
        session.close()
        monkeypatch.delenv(CRASH_POINT_ENV)

        with MaintenanceSession.open(crash_dir) as session:
            assert session.applied_seq == 3
            _assert_matches_twin(session, twin)
            twin.close()


class TestSigkillAtEvictionTime:
    def test_killed_apply_recovers_to_the_clean_run(self, tmp_path):
        db_file = tmp_path / "db.txt"
        inc_file = tmp_path / "inc.txt"
        save_database(TransactionDatabase(BASE), db_file)
        save_database(TransactionDatabase(BATCHES[0] + BATCHES[1]), inc_file)

        crash_dir = tmp_path / "crash"
        _make_session(crash_dir).close()

        env = {**os.environ, "PYTHONPATH": str(SRC_DIR)}
        killed = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "session",
                "apply",
                str(crash_dir),
                "--insertions",
                str(inc_file),
                "--batches",
                "2",
            ],
            env={**env, CRASH_POINT_ENV: "after-journal-before-apply:kill:1"},
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert killed.returncode == -signal.SIGKILL, killed.stderr

        # Recovery happens on open; checkpointing afterwards proves the
        # replayed state is also durable in its own right.
        recovered = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "session",
                "checkpoint",
                str(crash_dir),
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert recovered.returncode == 0, recovered.stderr

        twin = _clean_twin(tmp_path / "twin", [BATCHES[0], BATCHES[1]])
        with MaintenanceSession.open(crash_dir) as session:
            assert session.applied_seq == 2
            assert len(session.database) == WINDOW
            _assert_matches_twin(session, twin)
        twin.close()

"""The paper's worked examples (Section 3.1 Example 1, Section 3.2 Example 2).

The fixtures in ``conftest.py`` build concrete databases realising the support
counts the paper assumes; these tests check that FUP reaches exactly the
conclusions the paper walks through.
"""

from __future__ import annotations

from repro import AprioriMiner, FupUpdater

I1, I2, I3, I4 = 1, 2, 3, 4


class TestExample1:
    """First iteration: losers, candidate pruning, new winners (Section 3.1)."""

    def test_setup_matches_the_paper(self, example1):
        original = example1["original"]
        increment = example1["increment"]
        assert len(original) == 1000
        assert len(increment) == 100
        assert original.count_itemset((I1,)) == 32
        assert original.count_itemset((I2,)) == 31
        assert original.count_itemset((I3,)) == 28
        assert increment.count_itemset((I1,)) == 4
        assert increment.count_itemset((I2,)) == 1
        assert increment.count_itemset((I3,)) == 6
        assert increment.count_itemset((I4,)) == 2

    def test_i1_stays_large(self, example1):
        result = FupUpdater(example1["min_support"]).update(
            example1["original"], example1["old_lattice"], example1["increment"]
        )
        assert (I1,) in result.lattice
        assert result.support_count((I1,)) == 36  # 32 + 4, as in the paper

    def test_i2_becomes_a_loser(self, example1):
        result = FupUpdater(example1["min_support"]).update(
            example1["original"], example1["old_lattice"], example1["increment"]
        )
        assert (I2,) not in result.lattice  # 32 < 33 = 3% of 1100

    def test_i3_becomes_a_new_winner(self, example1):
        result = FupUpdater(example1["min_support"]).update(
            example1["original"], example1["old_lattice"], example1["increment"]
        )
        assert (I3,) in result.lattice
        assert result.support_count((I3,)) == 34  # 28 + 6, as in the paper

    def test_i4_is_pruned_before_the_database_scan(self, example1):
        # I4 appears only twice in the increment (< 3% of 100), so Lemma 2
        # removes it from the candidate set and it never becomes large.
        result = FupUpdater(example1["min_support"]).update(
            example1["original"], example1["old_lattice"], example1["increment"]
        )
        assert (I4,) not in result.lattice

    def test_fup_matches_remining(self, example1):
        support = example1["min_support"]
        updated = example1["original"].concatenate(example1["increment"])
        fup = FupUpdater(support).update(
            example1["original"], example1["old_lattice"], example1["increment"]
        )
        remined = AprioriMiner(support).mine(updated)
        assert fup.lattice.supports() == remined.lattice.supports()


class TestExample2:
    """Second iteration: Lemma 3 filtering and new size-2 winners (Section 3.2)."""

    def test_setup_matches_the_paper(self, example2):
        original = example2["original"]
        increment = example2["increment"]
        assert len(original) == 1000
        assert len(increment) == 100
        assert original.count_itemset((I1, I2)) == 50
        assert original.count_itemset((I2, I3)) == 31
        assert increment.count_itemset((I1, I2)) == 3
        assert increment.count_itemset((I1, I4)) == 5
        assert increment.count_itemset((I2, I4)) == 2
        # Old mined state is exactly L1 = {I1, I2, I3, filler} and
        # L2 = {I1I2, I2I3}, as the example assumes.
        old = example2["old_lattice"]
        assert (I1, I2) in old
        assert (I2, I3) in old
        assert (I1, I4) not in old

    def test_new_level_one_winners(self, example2):
        result = FupUpdater(example2["min_support"]).update(
            example2["original"], example2["old_lattice"], example2["increment"]
        )
        level_one = result.level(1)
        assert (I1,) in level_one
        assert (I2,) in level_one
        assert (I4,) in level_one  # new winner found from the increment
        assert (I3,) not in level_one  # loser

    def test_i2i3_is_filtered_as_a_loser(self, example2):
        # I3 is a level-1 loser, so Lemma 3 discards I2I3 without counting.
        result = FupUpdater(example2["min_support"]).update(
            example2["original"], example2["old_lattice"], example2["increment"]
        )
        assert (I2, I3) not in result.lattice

    def test_i1i2_stays_large(self, example2):
        result = FupUpdater(example2["min_support"]).update(
            example2["original"], example2["old_lattice"], example2["increment"]
        )
        assert (I1, I2) in result.lattice
        assert result.support_count((I1, I2)) == 53  # 50 + 3, as in the paper

    def test_i1i4_is_the_new_size_two_winner(self, example2):
        result = FupUpdater(example2["min_support"]).update(
            example2["original"], example2["old_lattice"], example2["increment"]
        )
        assert (I1, I4) in result.lattice
        assert result.support_count((I1, I4)) == 34  # 29 in DB + 5 in db

    def test_i2i4_is_pruned_by_its_increment_support(self, example2):
        # I2I4 occurs only twice in the increment (< 3), so Lemma 5 prunes it.
        result = FupUpdater(example2["min_support"]).update(
            example2["original"], example2["old_lattice"], example2["increment"]
        )
        assert (I2, I4) not in result.lattice

    def test_final_level_two_matches_the_example(self, example2):
        result = FupUpdater(example2["min_support"]).update(
            example2["original"], example2["old_lattice"], example2["increment"]
        )
        level_two = {
            candidate for candidate in result.level(2) if set(candidate) <= {I1, I2, I3, I4}
        }
        assert level_two == {(I1, I2), (I1, I4)}

    def test_fup_matches_remining(self, example2):
        support = example2["min_support"]
        updated = example2["original"].concatenate(example2["increment"])
        fup = FupUpdater(support).update(
            example2["original"], example2["old_lattice"], example2["increment"]
        )
        remined = AprioriMiner(support).mine(updated)
        assert fup.lattice.supports() == remined.lattice.supports()

"""Unit tests for the maintenance-policy layer (docs/maintenance-policies.md).

The property suite (`tests/property/test_policy_properties.py`) pins the
big invariants — window ≡ re-mine, skip soundness, decay monotonicity —
across backends and kernels; this file covers the contract edges: spec
parsing, manifest round trips, plan shapes, and the report/info surfaces.
"""

from __future__ import annotations

import pytest

from repro import (
    AprioriMiner,
    PolicyError,
    RuleMaintainer,
    SkipEstimator,
    SkipStats,
    SlidingWindowPolicy,
    TimeDecayPolicy,
    TopKPolicy,
    TransactionDatabase,
    UnboundedPolicy,
    UpdateBatch,
    parse_policy,
)
from repro.core.policy import policy_from_dict

BASE = [
    [1, 2, 3],
    [1, 2],
    [2, 3],
    [1, 3],
    [1, 2, 3],
    [2, 4],
    [3, 4],
    [1, 2, 4],
]


class TestParsePolicy:
    def test_default_and_unbounded(self):
        assert isinstance(parse_policy(None), UnboundedPolicy)
        assert isinstance(parse_policy("unbounded"), UnboundedPolicy)
        assert isinstance(parse_policy("  "), UnboundedPolicy)

    def test_specs(self):
        window = parse_policy("window:5")
        assert isinstance(window, SlidingWindowPolicy) and window.window == 5
        decay = parse_policy("decay:2.5")
        assert isinstance(decay, TimeDecayPolicy) and decay.half_life == 2.5
        topk = parse_policy("topk:7")
        assert isinstance(topk, TopKPolicy) and topk.k == 7

    @pytest.mark.parametrize(
        "spec",
        ["window:", "window:zero", "decay:soon", "topk:many", "lru:3", "window"],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(PolicyError):
            parse_policy(spec)

    @pytest.mark.parametrize("spec", ["window:0", "decay:0", "topk:0", "decay:-1"])
    def test_non_positive_arguments_raise(self, spec):
        with pytest.raises(PolicyError):
            parse_policy(spec)


class TestManifestRoundTrip:
    @pytest.mark.parametrize("spec", [None, "window:4", "decay:3", "topk:2"])
    def test_as_dict_round_trips(self, spec):
        policy = parse_policy(spec)
        restored = policy_from_dict(policy.as_dict())
        assert type(restored) is type(policy)
        assert restored.params() == policy.params()
        assert restored.describe() == policy.describe()

    def test_decay_state_round_trips(self):
        policy = TimeDecayPolicy(half_life=2)
        database = TransactionDatabase(BASE)
        plan = policy.plan(UpdateBatch.from_iterables(insertions=[[1, 4]]), database)
        policy.commit(plan)
        restored = policy_from_dict(policy.as_dict())
        assert restored.state() == policy.state()
        assert restored.decayed_size() == policy.decayed_size()

    def test_pre_policy_manifest_restores_unbounded(self):
        assert isinstance(policy_from_dict(None), UnboundedPolicy)
        assert isinstance(policy_from_dict({}), UnboundedPolicy)

    def test_unknown_manifest_type_raises(self):
        with pytest.raises(PolicyError):
            policy_from_dict({"type": "lru", "params": {}})


class TestSlidingWindowPlan:
    def test_evictions_are_oldest_rows_first(self):
        policy = SlidingWindowPolicy(len(BASE))
        database = TransactionDatabase(BASE)
        batch = UpdateBatch.from_iterables(insertions=[[1, 4], [2, 4]])
        plan = policy.plan(batch, database)
        assert plan.evictions == ((1, 2, 3), (1, 2))
        assert plan.batch.insertions == batch.insertions
        assert plan.batch.deletions == batch.deletions + plan.evictions
        assert plan.evicted == 2

    def test_user_deletions_count_against_the_window(self):
        policy = SlidingWindowPolicy(len(BASE))
        database = TransactionDatabase(BASE)
        batch = UpdateBatch.from_iterables(insertions=[[1, 4]], deletions=[[2, 3]])
        plan = policy.plan(batch, database)
        # One deletion already frees a slot; no synthesised eviction needed.
        assert plan.evictions == ()
        assert plan.batch is batch

    def test_window_matches_remine_through_maintainer(self):
        maintainer = RuleMaintainer(0.2, 0.5, policy=SlidingWindowPolicy(len(BASE)))
        maintainer.initialise(TransactionDatabase(BASE))
        report = maintainer.apply(
            UpdateBatch.from_iterables(insertions=[[1, 2, 4], [2, 3, 4], [1, 3, 4]])
        )
        assert report.evicted_transactions == 3
        assert len(maintainer.database) == len(BASE)
        remined = AprioriMiner(0.2).mine(
            TransactionDatabase(maintainer.database.transactions())
        )
        assert maintainer.result.lattice.supports() == remined.lattice.supports()


class TestTimeDecay:
    def test_effective_threshold_never_rises_under_pure_aging(self):
        policy = TimeDecayPolicy(half_life=2)
        maintainer = RuleMaintainer(0.25, 0.5, policy=policy)
        maintainer.initialise(TransactionDatabase(BASE))
        thresholds = [policy.effective_threshold(0.25)]
        for _ in range(policy.horizon + 2):
            maintainer.apply(UpdateBatch.from_iterables(insertions=[]))
            thresholds.append(policy.effective_threshold(0.25))
        assert thresholds == sorted(thresholds, reverse=True)

    def test_rows_past_the_horizon_are_evicted(self):
        policy = TimeDecayPolicy(half_life=1, weight_floor=0.25)
        maintainer = RuleMaintainer(0.25, 0.5, policy=policy)
        maintainer.initialise(TransactionDatabase(BASE))
        rounds = policy.horizon + 1
        evicted = 0
        for _ in range(rounds):
            # Empty batches don't advance the policy clock; age with one row.
            evicted += maintainer.apply(
                UpdateBatch.from_iterables(insertions=[[9]])
            ).evicted_transactions
        # Every seed row aged past the horizon, plus the aging rows that did.
        assert evicted == len(BASE) + rounds - policy.horizon
        assert maintainer.database.transactions() == [(9,)] * policy.horizon


class TestTopK:
    def test_bound_is_a_best_first_prefix(self):
        maintainer = RuleMaintainer(0.2, 0.5, policy=TopKPolicy(3))
        maintainer.initialise(TransactionDatabase(BASE))
        unbounded = RuleMaintainer(0.2, 0.5)
        unbounded.initialise(TransactionDatabase(BASE))
        assert len(unbounded.rules) > 3
        assert maintainer.rules == unbounded.rules[:3]
        # The lattice itself stays exact and unbounded.
        assert (
            maintainer.result.lattice.supports() == unbounded.result.lattice.supports()
        )


class TestSkipEstimator:
    def test_invalid_parameters_raise(self):
        with pytest.raises(PolicyError):
            SkipEstimator(sample_size=0)
        with pytest.raises(PolicyError):
            SkipEstimator(border_cap=-1)

    def test_no_change_round_is_skipped_with_exact_counts(self):
        estimator = SkipEstimator()
        maintainer = RuleMaintainer(0.5, 0.5, skip_estimator=estimator)
        maintainer.initialise(TransactionDatabase([[1, 2]] * 8 + [[3]] * 2))
        report = maintainer.apply(UpdateBatch.from_iterables(insertions=[[1, 2]] * 2))
        assert report.skipped
        assert maintainer.result.algorithm == "fup-skip"
        remined = AprioriMiner(0.5).mine(
            TransactionDatabase(maintainer.database.transactions())
        )
        assert maintainer.result.lattice.supports() == remined.lattice.supports()
        assert estimator.stats.rounds_checked == 1
        assert estimator.stats.rounds_skipped == 1

    def test_promotion_forces_the_round(self):
        estimator = SkipEstimator()
        maintainer = RuleMaintainer(0.5, 0.5, skip_estimator=estimator)
        maintainer.initialise(TransactionDatabase([[1, 2]] * 6 + [[3]] * 4))
        report = maintainer.apply(UpdateBatch.from_iterables(insertions=[[3]] * 4))
        assert not report.skipped
        assert estimator.stats.rounds_forced == 1
        assert estimator.stats.actual_change == 1
        assert maintainer.result.lattice.supports() == AprioriMiner(0.5).mine(
            TransactionDatabase(maintainer.database.transactions())
        ).lattice.supports()

    def test_stats_round_trip(self):
        stats = SkipStats(rounds_checked=3, rounds_skipped=2, forced_by_border=1)
        assert SkipStats.from_dict(stats.as_dict()) == stats
        assert SkipStats.from_dict({**stats.as_dict(), "future_field": 9}) == stats


class TestSurfaces:
    def test_report_summary_carries_policy_columns(self):
        maintainer = RuleMaintainer(0.2, 0.5, policy=SlidingWindowPolicy(len(BASE)))
        maintainer.initialise(TransactionDatabase(BASE))
        report = maintainer.apply(UpdateBatch.from_iterables(insertions=[[1, 2, 4]]))
        summary = report.summary()
        assert summary["policy"] == f"window:{len(BASE)}"
        assert summary["evicted"] == 1

    def test_policy_info_includes_skip_stats_when_enabled(self):
        maintainer = RuleMaintainer(
            0.5, 0.5, policy=UnboundedPolicy(), skip_estimator=SkipEstimator()
        )
        maintainer.initialise(TransactionDatabase([[1, 2]] * 8 + [[3]] * 2))
        maintainer.apply(UpdateBatch.from_iterables(insertions=[[1, 2]] * 2))
        info = maintainer.policy_info()
        assert info["policy"] == "unbounded"
        assert info["skip"]["rounds_skipped"] == 1

"""Unit and equivalence tests for the FUP updater."""

from __future__ import annotations

import random

import pytest

from repro import AprioriMiner, FupOptions, FupUpdater, TransactionDatabase, update_with_fup
from repro.errors import InvalidThresholdError, StaleStateError
from repro.mining.result import ItemsetLattice


def split_database(database: TransactionDatabase, increment_size: int):
    """Split the tail of *database* off as an increment (the paper's construction)."""
    cut = len(database) - increment_size
    return database.slice(0, cut, name="original"), database.slice(cut, name="increment")


class TestFupEquivalence:
    """The central invariant: FUP == Apriori re-mined on the updated database."""

    def test_small_database(self, small_database, small_increment):
        for support in (0.2, 0.3, 0.4, 0.5):
            initial = AprioriMiner(support).mine(small_database)
            fup = FupUpdater(support).update(small_database, initial, small_increment)
            remined = AprioriMiner(support).mine(small_database.concatenate(small_increment))
            assert fup.lattice.supports() == remined.lattice.supports()

    @pytest.mark.parametrize("seed", range(6))
    def test_random_databases(self, random_database_factory, seed):
        database = random_database_factory(transactions=250, items=15, max_size=7, seed=seed)
        original, increment = split_database(database, 50)
        support = 0.08
        initial = AprioriMiner(support).mine(original)
        fup = FupUpdater(support).update(original, initial, increment)
        remined = AprioriMiner(support).mine(database)
        assert fup.lattice.supports() == remined.lattice.supports()

    def test_increment_with_new_items(self, small_database):
        # Items 7 and 8 never occur in the original database but dominate the
        # increment; FUP must discover them as new large itemsets.
        increment = TransactionDatabase([[7, 8], [7, 8], [7, 8], [7]])
        support = 0.25
        initial = AprioriMiner(support).mine(small_database)
        fup = FupUpdater(support).update(small_database, initial, increment)
        remined = AprioriMiner(support).mine(small_database.concatenate(increment))
        assert fup.lattice.supports() == remined.lattice.supports()
        assert (7,) in fup.lattice

    def test_increment_larger_than_database(self, random_database_factory):
        original = random_database_factory(transactions=60, items=12, seed=1, name="orig")
        increment = random_database_factory(transactions=200, items=12, seed=2, name="incr")
        support = 0.1
        initial = AprioriMiner(support).mine(original)
        fup = FupUpdater(support).update(original, initial, increment)
        remined = AprioriMiner(support).mine(original.concatenate(increment))
        assert fup.lattice.supports() == remined.lattice.supports()

    def test_empty_increment_returns_old_state(self, small_database):
        support = 0.3
        initial = AprioriMiner(support).mine(small_database)
        fup = FupUpdater(support).update(small_database, initial, TransactionDatabase())
        assert fup.lattice.supports() == initial.lattice.supports()
        assert fup.database_size == len(small_database)

    def test_empty_original_database(self, small_increment):
        support = 0.3
        empty = TransactionDatabase()
        initial = AprioriMiner(support).mine(empty)
        fup = FupUpdater(support).update(empty, initial, small_increment)
        remined = AprioriMiner(support).mine(small_increment)
        assert fup.lattice.supports() == remined.lattice.supports()

    def test_skewed_increment_that_kills_old_winners(self):
        # The original database strongly supports {1, 2}; the increment is all
        # {8, 9}, pushing the old winners below the threshold.
        original = TransactionDatabase([[1, 2]] * 6 + [[3]] * 4)
        increment = TransactionDatabase([[8, 9]] * 10)
        support = 0.5
        initial = AprioriMiner(support).mine(original)
        assert (1, 2) in initial.lattice
        fup = FupUpdater(support).update(original, initial, increment)
        remined = AprioriMiner(support).mine(original.concatenate(increment))
        assert fup.lattice.supports() == remined.lattice.supports()
        assert (1, 2) not in fup.lattice
        assert (8, 9) in fup.lattice

    def test_result_can_seed_next_update(self, random_database_factory):
        # Chain three increments, each applied with FUP on the previous output.
        database = random_database_factory(transactions=300, items=14, max_size=6, seed=42)
        support = 0.08
        original = database.slice(0, 150, name="original")
        state = AprioriMiner(support).mine(original)
        accumulated = original.copy()
        for start in (150, 200, 250):
            increment = database.slice(start, start + 50, name=f"incr-{start}")
            state = FupUpdater(support).update(accumulated, state, increment)
            accumulated = accumulated.concatenate(increment)
        remined = AprioriMiner(support).mine(accumulated)
        assert state.lattice.supports() == remined.lattice.supports()

    def test_accepts_bare_lattice_as_previous_state(self, small_database, small_increment):
        support = 0.3
        initial = AprioriMiner(support).mine(small_database)
        fup = FupUpdater(support).update(small_database, initial.lattice, small_increment)
        remined = AprioriMiner(support).mine(small_database.concatenate(small_increment))
        assert fup.lattice.supports() == remined.lattice.supports()

    def test_convenience_wrapper(self, small_database, small_increment):
        support = 0.3
        initial = AprioriMiner(support).mine(small_database)
        assert (
            update_with_fup(small_database, initial, small_increment, support).lattice.supports()
            == FupUpdater(support).update(small_database, initial, small_increment).lattice.supports()
        )


class TestFupOptionCombinations:
    """Every optimisation may change the work done but never the answer."""

    @pytest.mark.parametrize(
        "options",
        [
            FupOptions(),
            FupOptions(prune_candidates_by_increment=False),
            FupOptions(filter_losers_by_subsets=False),
            FupOptions(reduce_databases=False),
            FupOptions(use_hash_filter=False),
            FupOptions.all_disabled(),
            FupOptions(hash_table_size=7),
        ],
    )
    def test_all_option_combinations_agree(self, random_database_factory, options):
        database = random_database_factory(transactions=300, items=16, max_size=7, seed=17)
        original, increment = split_database(database, 60)
        support = 0.07
        initial = AprioriMiner(support).mine(original)
        fup = FupUpdater(support, options=options).update(original, initial, increment)
        remined = AprioriMiner(support).mine(database)
        assert fup.lattice.supports() == remined.lattice.supports()


class TestFupPruningBehaviour:
    def test_fewer_candidates_than_apriori(self, random_database_factory):
        database = random_database_factory(transactions=500, items=30, max_size=8, seed=23)
        original, increment = split_database(database, 50)
        support = 0.05
        initial = AprioriMiner(support).mine(original)
        fup = FupUpdater(support).update(original, initial, increment)
        remined = AprioriMiner(support).mine(database)
        assert fup.candidates_generated < remined.candidates_generated

    def test_candidate_pruning_reduces_candidates(self, random_database_factory):
        database = random_database_factory(transactions=400, items=25, max_size=7, seed=31)
        original, increment = split_database(database, 40)
        support = 0.06
        initial = AprioriMiner(support).mine(original)
        pruned = FupUpdater(support).update(original, initial, increment)
        unpruned = FupUpdater(
            support, options=FupOptions(prune_candidates_by_increment=False)
        ).update(original, initial, increment)
        assert pruned.candidates_generated <= unpruned.candidates_generated

    def test_no_database_scan_when_nothing_new_in_increment(self):
        # The increment repeats the original pattern exactly, so every size-1
        # candidate extracted from it is already large and no candidate
        # survives to require a scan of the original database.
        original = TransactionDatabase([[1, 2]] * 20)
        increment = TransactionDatabase([[1, 2]] * 5)
        support = 0.5
        initial = AprioriMiner(support).mine(original)
        fup = FupUpdater(support).update(original, initial, increment)
        assert fup.database_scans == 0
        assert set(fup.large_itemsets) == {(1,), (2,), (1, 2)}

    def test_increment_scans_are_counted(self, small_database, small_increment):
        support = 0.3
        initial = AprioriMiner(support).mine(small_database)
        fup = FupUpdater(support).update(small_database, initial, small_increment)
        assert fup.increment_scans >= 1

    def test_support_counts_are_exact_for_all_winners(self, random_database_factory):
        database = random_database_factory(transactions=300, items=15, max_size=7, seed=8)
        original, increment = split_database(database, 60)
        support = 0.08
        initial = AprioriMiner(support).mine(original)
        fup = FupUpdater(support).update(original, initial, increment)
        for candidate, count in fup.lattice.supports().items():
            assert count == database.count_itemset(candidate)


class TestFupValidation:
    def test_rejects_stale_database_size(self, small_database, small_increment):
        initial = AprioriMiner(0.3).mine(small_database)
        grown = small_database.copy()
        grown.append([1, 2, 3])
        with pytest.raises(StaleStateError):
            FupUpdater(0.3).update(grown, initial, small_increment)

    def test_rejects_changed_min_support(self, small_database, small_increment):
        initial = AprioriMiner(0.3).mine(small_database)
        with pytest.raises(StaleStateError):
            FupUpdater(0.4).update(small_database, initial, small_increment)

    def test_bare_lattice_skips_support_check_but_not_size_check(
        self, small_database, small_increment
    ):
        initial = AprioriMiner(0.3).mine(small_database)
        stale = ItemsetLattice(initial.lattice.supports(), database_size=5)
        with pytest.raises(StaleStateError):
            FupUpdater(0.3).update(small_database, stale, small_increment)

    def test_rejects_bad_support(self):
        with pytest.raises(InvalidThresholdError):
            FupUpdater(0.0)

    def test_rejects_bad_max_size(self):
        with pytest.raises(ValueError):
            FupUpdater(0.5, max_itemset_size=0)

    def test_max_itemset_size_cap(self, small_database, small_increment):
        initial = AprioriMiner(0.3, max_itemset_size=1).mine(small_database)
        fup = FupUpdater(0.3, max_itemset_size=1).update(small_database, initial, small_increment)
        assert fup.lattice.max_size() <= 1


class TestFupAlgorithmLabel:
    def test_result_is_labelled_fup(self, small_database, small_increment):
        initial = AprioriMiner(0.3).mine(small_database)
        result = FupUpdater(0.3).update(small_database, initial, small_increment)
        assert result.algorithm == "fup"
        assert result.min_support == 0.3

"""Unit and equivalence tests for the FUP2-style generalised updater."""

from __future__ import annotations

import pytest

from repro import AprioriMiner, Fup2Updater, TransactionDatabase, update_with_fup2
from repro.errors import StaleStateError


def tail_split(database: TransactionDatabase, count: int):
    """Return (head, tail) where tail holds the last *count* transactions."""
    cut = len(database) - count
    return database.slice(0, cut), database.slice(cut)


class TestInsertOnly:
    """With no deletions, FUP2 must agree with FUP and with re-mining."""

    def test_matches_remining(self, small_database, small_increment):
        support = 0.3
        initial = AprioriMiner(support).mine(small_database)
        result = Fup2Updater(support).update(
            small_database, initial, small_increment, TransactionDatabase()
        )
        remined = AprioriMiner(support).mine(small_database.concatenate(small_increment))
        assert result.lattice.supports() == remined.lattice.supports()

    @pytest.mark.parametrize("seed", range(3))
    def test_random_databases(self, random_database_factory, seed):
        database = random_database_factory(transactions=220, items=14, seed=seed)
        original, increment = tail_split(database, 40)
        support = 0.09
        initial = AprioriMiner(support).mine(original)
        result = Fup2Updater(support).update(original, initial, increment, TransactionDatabase())
        remined = AprioriMiner(support).mine(database)
        assert result.lattice.supports() == remined.lattice.supports()


class TestDeleteOnly:
    def test_matches_remining_on_remainder(self, random_database_factory):
        database = random_database_factory(transactions=250, items=14, seed=5)
        support = 0.08
        initial = AprioriMiner(support).mine(database)
        keep, deleted = tail_split(database, 60)
        result = Fup2Updater(support).update(
            database, initial, TransactionDatabase(), deleted
        )
        remined = AprioriMiner(support).mine(keep)
        assert result.lattice.supports() == remined.lattice.supports()

    def test_insert_then_delete_roundtrip(self, random_database_factory):
        # Applying an increment with FUP2 and then deleting the same
        # transactions must restore the original mined state exactly.
        original = random_database_factory(transactions=200, items=12, seed=6)
        increment = random_database_factory(transactions=50, items=12, seed=7)
        support = 0.1
        initial = AprioriMiner(support).mine(original)
        after_insert = Fup2Updater(support).update(
            original, initial, increment, TransactionDatabase()
        )
        combined = original.concatenate(increment)
        after_delete = Fup2Updater(support).update(
            combined, after_insert, TransactionDatabase(), increment
        )
        assert after_delete.lattice.supports() == initial.lattice.supports()

    def test_deletion_can_create_new_winners(self):
        # Item 5 is just below the threshold; deleting transactions that do
        # not contain it raises its relative support above the threshold.
        original = TransactionDatabase([[5]] * 4 + [[1, 2]] * 6)
        support = 0.5
        initial = AprioriMiner(support).mine(original)
        assert (5,) not in initial.lattice
        deletions = TransactionDatabase([[1, 2]] * 4)
        result = Fup2Updater(support).update(
            original, initial, TransactionDatabase(), deletions
        )
        assert (5,) in result.lattice
        remined = AprioriMiner(support).mine(TransactionDatabase([[5]] * 4 + [[1, 2]] * 2))
        assert result.lattice.supports() == remined.lattice.supports()

    def test_delete_everything(self, small_database):
        support = 0.3
        initial = AprioriMiner(support).mine(small_database)
        result = Fup2Updater(support).update(
            small_database, initial, TransactionDatabase(), small_database.copy()
        )
        assert len(result.lattice) == 0
        assert result.database_size == 0


class TestShrinkFallbackInstrumentation:
    """The shrink fallback's item-universe pass must be visible and cached."""

    def _shrink_update(self, database, support):
        """Delete most of the database so ``new_candidate_floor`` drops below 1."""
        initial = AprioriMiner(support).mine(database)
        keep, deleted = tail_split(database, len(database) - 3)
        return (
            Fup2Updater(support).update(database, initial, TransactionDatabase(), deleted),
            keep,
        )

    def test_fallback_scan_is_accounted(self, random_database_factory):
        database = random_database_factory(transactions=60, items=10, seed=11)
        result, keep = self._shrink_update(database, 0.3)
        # The item-universe enumeration is a real pass over the original
        # database and must show up in the run's scan accounting.
        assert result.database_scans >= 1
        assert result.transactions_read >= len(database)
        remined = AprioriMiner(0.3).mine(keep)
        assert result.lattice.supports() == remined.lattice.supports()

    def test_fallback_uses_the_item_universe_cache(self, random_database_factory):
        database = random_database_factory(transactions=60, items=10, seed=12)
        database.items()  # primed: the fallback must not account a new scan
        initial = AprioriMiner(0.3).mine(database)
        keep, deleted = tail_split(database, len(database) - 3)
        warm = Fup2Updater(0.3).update(database, initial, TransactionDatabase(), deleted)
        cold_database = random_database_factory(transactions=60, items=10, seed=12)
        cold_initial = AprioriMiner(0.3).mine(cold_database)
        _, cold_deleted = tail_split(cold_database, len(cold_database) - 3)
        cold = Fup2Updater(0.3).update(
            cold_database, cold_initial, TransactionDatabase(), cold_deleted
        )
        assert warm.lattice.supports() == cold.lattice.supports()
        assert warm.database_scans < cold.database_scans


class TestMixedBatches:
    @pytest.mark.parametrize("seed", range(3))
    def test_simultaneous_insert_and_delete(self, random_database_factory, seed):
        database = random_database_factory(transactions=260, items=15, seed=seed + 20)
        original, deletions = tail_split(database, 40)
        # Delete 40 existing transactions while inserting 55 new ones.
        insertions = random_database_factory(transactions=55, items=15, seed=seed + 50)
        support = 0.09
        initial = AprioriMiner(support).mine(database)
        result = Fup2Updater(support).update(database, initial, insertions, deletions)
        expected_database = original.concatenate(insertions)
        remined = AprioriMiner(support).mine(expected_database)
        assert result.lattice.supports() == remined.lattice.supports()

    def test_modification_as_delete_plus_insert(self):
        # "Modify" the last two transactions by deleting the old versions and
        # inserting replacements.
        original = TransactionDatabase([[1, 2]] * 5 + [[3, 4]] * 2)
        support = 0.25
        initial = AprioriMiner(support).mine(original)
        result = Fup2Updater(support).update(
            original,
            initial,
            TransactionDatabase([[1, 3]] * 2),
            TransactionDatabase([[3, 4]] * 2),
        )
        remined = AprioriMiner(support).mine(TransactionDatabase([[1, 2]] * 5 + [[1, 3]] * 2))
        assert result.lattice.supports() == remined.lattice.supports()

    def test_empty_update_is_identity(self, small_database):
        support = 0.3
        initial = AprioriMiner(support).mine(small_database)
        result = Fup2Updater(support).update(
            small_database, initial, TransactionDatabase(), TransactionDatabase()
        )
        assert result.lattice.supports() == initial.lattice.supports()

    def test_convenience_wrapper(self, small_database, small_increment):
        support = 0.3
        initial = AprioriMiner(support).mine(small_database)
        direct = Fup2Updater(support).update(
            small_database, initial, small_increment, TransactionDatabase()
        )
        wrapped = update_with_fup2(
            small_database, initial, small_increment, TransactionDatabase(), support
        )
        assert direct.lattice.supports() == wrapped.lattice.supports()


class TestFup2Validation:
    def test_rejects_stale_database_size(self, small_database, small_increment):
        initial = AprioriMiner(0.3).mine(small_database)
        grown = small_database.copy()
        grown.append([1])
        with pytest.raises(StaleStateError):
            Fup2Updater(0.3).update(grown, initial, small_increment, TransactionDatabase())

    def test_rejects_changed_support(self, small_database, small_increment):
        initial = AprioriMiner(0.3).mine(small_database)
        with pytest.raises(StaleStateError):
            Fup2Updater(0.2).update(
                small_database, initial, small_increment, TransactionDatabase()
            )

    def test_rejects_oversized_deletion_batch(self, small_database):
        initial = AprioriMiner(0.3).mine(small_database)
        too_many = TransactionDatabase([[1]] * (len(small_database) + 1))
        with pytest.raises(StaleStateError):
            Fup2Updater(0.3).update(small_database, initial, TransactionDatabase(), too_many)

    def test_algorithm_label(self, small_database, small_increment):
        initial = AprioriMiner(0.3).mine(small_database)
        result = Fup2Updater(0.3).update(
            small_database, initial, small_increment, TransactionDatabase()
        )
        assert result.algorithm == "fup2"

"""Unit tests for the durable maintenance session."""

from __future__ import annotations

import json

import pytest

from repro import (
    AprioriMiner,
    MaintenanceSession,
    TransactionDatabase,
    UpdateBatch,
)
from repro.core.session import JOURNAL_NAME, MANIFEST_NAME
from repro.errors import StaleStateError, StorageError
from repro.harness.runner import run_durable_session


@pytest.fixture
def session_dir(tmp_path):
    return tmp_path / "session"


@pytest.fixture
def session(session_dir, small_database):
    created = MaintenanceSession.create(
        session_dir,
        small_database,
        min_support=0.3,
        min_confidence=0.5,
        checkpoint_interval=3,
    )
    yield created
    created.close()


def _journal_lines(session_dir):
    return (session_dir / JOURNAL_NAME).read_text().splitlines()


def _crash(session):
    """Simulate the process dying: fds close, the flock drops, nothing else.

    ``close()`` is write-free (durability is established per journal append,
    never at close time), so from the disk's point of view a closed session
    is indistinguishable from a killed one — no checkpoint, no journal
    truncation, no flush happens here.
    """
    session.close()


class TestCreate:
    def test_initial_layout(self, session, session_dir):
        assert (session_dir / MANIFEST_NAME).exists()
        assert (session_dir / "snapshot-0.bin").exists()
        assert (session_dir / "state-0.json").exists()
        assert (session_dir / JOURNAL_NAME).read_text() == ""

    def test_initial_state_matches_direct_mine(self, session, small_database):
        direct = AprioriMiner(0.3).mine(small_database)
        assert session.result.lattice.supports() == direct.lattice.supports()

    def test_refuses_existing_session(self, session, session_dir, small_database):
        with pytest.raises(StorageError):
            MaintenanceSession.create(
                session_dir, small_database, min_support=0.3, min_confidence=0.5
            )

    def test_rejects_bad_checkpoint_interval(self, tmp_path, small_database):
        with pytest.raises(ValueError):
            MaintenanceSession.create(
                tmp_path / "s",
                small_database,
                min_support=0.3,
                min_confidence=0.5,
                checkpoint_interval=0,
            )


class TestApply:
    def test_apply_journals_before_state(self, session, session_dir):
        session.apply(UpdateBatch.from_iterables(insertions=[[1, 2]], label="b1"))
        lines = _journal_lines(session_dir)
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["seq"] == 1
        assert record["insertions"] == [[1, 2]]
        assert record["label"] == "b1"

    def test_refused_batch_is_scrubbed_from_journal(self, session, session_dir):
        with pytest.raises(StaleStateError):
            session.apply(UpdateBatch.from_iterables(deletions=[[98, 99]]))
        assert _journal_lines(session_dir) == []
        assert session.applied_seq == 0

    def test_auto_checkpoint_compacts_journal(self, session, session_dir):
        for index in range(3):
            session.apply(UpdateBatch.from_iterables(insertions=[[1, index + 10]]))
        assert session.checkpoint_seq == 3
        assert _journal_lines(session_dir) == []
        assert (session_dir / "snapshot-3.bin").exists()
        assert not (session_dir / "snapshot-0.bin").exists()

    def test_empty_batch_is_never_journaled(self, session, session_dir):
        """No-op batches leave no journal record and burn no sequence number."""
        before = _journal_lines(session_dir)
        report = session.apply(UpdateBatch(label="nothing"))
        assert report.algorithm == "noop"
        assert session.applied_seq == 0
        assert session.pending_batches == 0
        assert _journal_lines(session_dir) == before
        # A real batch afterwards takes the next contiguous sequence number.
        session.add_transactions([[1, 4]], label="real")
        assert session.applied_seq == 1
        assert json.loads(_journal_lines(session_dir)[-1])["seq"] == 1

    def test_maintainer_sequence_tracks_applied_seq(self, session):
        assert session.maintainer.sequence == session.applied_seq == 0
        session.add_transactions([[1, 4], [2, 4]], label="a")
        assert session.maintainer.sequence == session.applied_seq == 1
        session.remove_transactions([[1, 2, 3]], label="b")
        assert session.maintainer.sequence == session.applied_seq == 2

    def test_sequence_survives_reopen_and_checkpoint(self, session, session_dir):
        session.add_transactions([[1, 4], [2, 4]], label="a")
        session.checkpoint()
        session.add_transactions([[2, 5]], label="b")
        _crash(session)
        with MaintenanceSession.open(session_dir) as reopened:
            assert reopened.maintainer.sequence == reopened.applied_seq == 2

    def test_failing_publication_subscriber_does_not_desync_the_journal(
        self, session, session_dir, small_database
    ):
        """A post-commit subscriber error must not scrub the journal record.

        The state change has already committed when subscribers run; treating
        their exception like a refused batch would truncate a journal record
        whose batch IS in the in-memory database — the silent-desync class
        the journal exists to prevent.  The error still propagates, but
        journal, applied_seq and maintainer state all stay in step, and a
        recovery reproduces exactly the live state.
        """

        armed = {"on": False}

        def explode(maintainer):
            if armed["on"]:
                raise RuntimeError("metrics sink offline")

        session.maintainer.subscribe(explode)  # fires once immediately, unarmed
        armed["on"] = True
        with pytest.raises(RuntimeError):
            session.add_transactions([[1, 4], [2, 4]], label="committed")
        assert session.applied_seq == 1
        assert session.maintainer.sequence == 1
        assert len(session.database) == len(small_database) + 2
        assert json.loads(_journal_lines(session_dir)[-1])["seq"] == 1
        live_supports = session.result.lattice.supports()
        _crash(session)
        with MaintenanceSession.open(session_dir) as recovered:
            assert recovered.applied_seq == 1
            assert recovered.result.lattice.supports() == live_supports

    def test_refused_batch_is_still_scrubbed_with_a_subscriber_attached(
        self, session, session_dir
    ):
        """Pre-commit failures keep the scrub semantics even with subscribers."""
        session.maintainer.subscribe(lambda maintainer: None)
        with pytest.raises(StaleStateError):
            session.remove_transactions([[7, 8, 9]], label="phantom")
        assert session.applied_seq == 0
        assert all(
            json.loads(line)["label"] != "phantom"
            for line in _journal_lines(session_dir)
        )

    def test_apply_after_close_is_refused(self, session):
        session.close()
        with pytest.raises(StorageError):
            session.apply(UpdateBatch.from_iterables(insertions=[[1]]))

    def test_convenience_wrappers(self, session, small_database):
        session.add_transactions([[1, 2]], label="add")
        session.remove_transactions([list(small_database[0])], label="del")
        assert session.applied_seq == 2


class TestRecovery:
    def test_reopen_without_close_recovers_everything(self, session, session_dir, small_database):
        session.apply(UpdateBatch.from_iterables(insertions=[[2, 3], [1, 4]]))
        session.apply(UpdateBatch.from_iterables(deletions=[list(small_database[0])]))
        # Simulated crash before any checkpoint — reopen from disk.
        _crash(session)
        recovered = MaintenanceSession.open(session_dir)
        assert recovered.applied_seq == 2
        assert list(recovered.database) == list(session.database)
        assert recovered.result.lattice.supports() == session.result.lattice.supports()
        assert [str(r) for r in recovered.rules] == [str(r) for r in session.rules]
        recovered.close()

    def test_journaled_but_unapplied_batch_is_replayed(self, session, session_dir):
        # Crash between the journal append and the in-memory apply: write the
        # record by hand, then recover.  The batch must be applied exactly once.
        _crash(session)
        with (session_dir / JOURNAL_NAME).open("a") as handle:
            handle.write(json.dumps({"seq": 1, "label": "wal", "insertions": [[1, 5]], "deletions": []}) + "\n")
        recovered = MaintenanceSession.open(session_dir)
        assert recovered.applied_seq == 1
        assert recovered.database.transactions()[-1] == (1, 5)
        remined = AprioriMiner(0.3).mine(recovered.database)
        assert recovered.result.lattice.supports() == remined.lattice.supports()
        recovered.close()

    def test_torn_journal_tail_is_discarded(self, session, session_dir):
        session.apply(UpdateBatch.from_iterables(insertions=[[2, 4]]))
        _crash(session)
        with (session_dir / JOURNAL_NAME).open("a") as handle:
            handle.write('{"seq": 2, "label": "torn", "insertio')
        recovered = MaintenanceSession.open(session_dir)
        assert recovered.applied_seq == 1
        # The torn bytes are gone, so the next apply lands cleanly.
        recovered.apply(UpdateBatch.from_iterables(insertions=[[3, 4]]))
        assert recovered.applied_seq == 2
        for line in _journal_lines(session_dir):
            json.loads(line)
        recovered.close()

    def test_corrupted_middle_record_is_refused(self, session, session_dir):
        _crash(session)
        with (session_dir / JOURNAL_NAME).open("a") as handle:
            handle.write("not json\n")
            handle.write(json.dumps({"seq": 2, "insertions": [[1]], "deletions": []}) + "\n")
        with pytest.raises(StorageError):
            MaintenanceSession.open(session_dir)

    def test_non_contiguous_journal_is_refused(self, session, session_dir):
        _crash(session)
        with (session_dir / JOURNAL_NAME).open("a") as handle:
            handle.write(json.dumps({"seq": 5, "insertions": [[1]], "deletions": []}) + "\n")
        with pytest.raises(StorageError):
            MaintenanceSession.open(session_dir)

    def test_journal_against_wrong_snapshot_fails_loudly(self, session, session_dir):
        # A deletion that the snapshot database cannot satisfy must raise,
        # not silently "delete" a phantom row.
        _crash(session)
        with (session_dir / JOURNAL_NAME).open("a") as handle:
            handle.write(json.dumps({"seq": 1, "deletions": [[77, 88]], "insertions": []}) + "\n")
        with pytest.raises(StaleStateError):
            MaintenanceSession.open(session_dir)

    def test_concurrent_open_is_refused_while_session_is_live(self, session, session_dir):
        # Two live writers would interleave journal seqs and sweep each
        # other's snapshots; the directory lock refuses the second open.
        with pytest.raises(StorageError, match="already in use"):
            MaintenanceSession.open(session_dir)
        # Releasing the lock (crash or close) makes the session reopenable.
        _crash(session)
        MaintenanceSession.open(session_dir).close()

    def test_open_missing_directory(self, tmp_path):
        with pytest.raises(StorageError):
            MaintenanceSession.open(tmp_path / "nope")

    def test_open_sweeps_checkpoint_debris(self, session, session_dir):
        # A checkpoint that crashed mid-write leaves .tmp partials and an
        # unreferenced snapshot pair; recovery must clean them up.
        _crash(session)
        (session_dir / "snapshot-9.bin.tmp").write_bytes(b"partial")
        (session_dir / "snapshot-9.bin").write_bytes(b"orphan")
        (session_dir / "state-9.json").write_text("{}")
        recovered = MaintenanceSession.open(session_dir)
        recovered.close()
        names = sorted(p.name for p in session_dir.iterdir())
        assert names == [
            "journal.jsonl",
            "session.json",
            "session.lock",
            "snapshot-0.bin",
            "state-0.json",
        ]

    def test_open_rejects_foreign_manifest(self, tmp_path):
        directory = tmp_path / "bad"
        directory.mkdir()
        (directory / MANIFEST_NAME).write_text('{"format": "something-else"}')
        with pytest.raises(StorageError):
            MaintenanceSession.open(directory)

    def test_recovery_equivalent_to_uninterrupted_run(self, tmp_path, small_database):
        batches = [
            UpdateBatch.from_iterables(insertions=[[1, 4], [2, 3, 4]], label="a"),
            UpdateBatch.from_iterables(deletions=[list(small_database[1])], label="b"),
            UpdateBatch.from_iterables(insertions=[[1, 2, 4]], deletions=[[2, 4]], label="c"),
            UpdateBatch.from_iterables(insertions=[[3, 4]], label="d"),
        ]
        smooth = MaintenanceSession.create(
            tmp_path / "smooth", small_database, min_support=0.3, min_confidence=0.5
        )
        for batch in batches:
            smooth.apply(batch)

        bumpy = MaintenanceSession.create(
            tmp_path / "bumpy",
            small_database,
            min_support=0.3,
            min_confidence=0.5,
            checkpoint_interval=2,
        )
        for batch in batches[:2]:
            bumpy.apply(batch)
        _crash(bumpy)
        resumed = MaintenanceSession.open(tmp_path / "bumpy")
        for batch in batches[2:]:
            resumed.apply(batch)

        assert list(resumed.database) == list(smooth.database)
        assert resumed.result.lattice.supports() == smooth.result.lattice.supports()
        assert [str(r) for r in resumed.rules] == [str(r) for r in smooth.rules]
        smooth.close()
        resumed.close()


class TestCheckpointAndStatus:
    def test_manual_checkpoint(self, session, session_dir):
        session.apply(UpdateBatch.from_iterables(insertions=[[1, 5]]))
        assert session.pending_batches == 1
        seq = session.checkpoint()
        assert seq == 1
        assert session.pending_batches == 0
        assert (session_dir / "snapshot-1.bin").exists()
        assert _journal_lines(session_dir) == []

    def test_checkpoint_with_nothing_pending_is_a_noop(self, session, session_dir):
        before = (session_dir / MANIFEST_NAME).read_text()
        assert session.checkpoint() == 0
        assert (session_dir / MANIFEST_NAME).read_text() == before

    def test_status_and_peek_agree(self, session, session_dir):
        session.apply(UpdateBatch.from_iterables(insertions=[[4, 5]]))
        live = session.status()
        peeked = MaintenanceSession.peek(session_dir)
        assert live.applied_seq == peeked.applied_seq == 1
        assert live.checkpoint_seq == peeked.checkpoint_seq == 0
        assert live.pending_batches == peeked.pending_batches == 1
        # peek describes the checkpoint, not the journaled tail
        assert peeked.database_size == 9
        assert live.database_size == 10

    def test_peek_does_not_touch_files(self, session, session_dir):
        session.apply(UpdateBatch.from_iterables(insertions=[[4, 5]]))
        journal_before = (session_dir / JOURNAL_NAME).read_bytes()
        MaintenanceSession.peek(session_dir)
        assert (session_dir / JOURNAL_NAME).read_bytes() == journal_before

    def test_peek_reports_mid_journal_corruption(self, session, session_dir):
        # status must not show a healthy count for a journal open() refuses.
        session.apply(UpdateBatch.from_iterables(insertions=[[4, 5]]))
        _crash(session)
        with (session_dir / JOURNAL_NAME).open("a") as handle:
            handle.write("garbage\n")
            handle.write(json.dumps({"seq": 2, "insertions": [[1]], "deletions": []}) + "\n")
        with pytest.raises(StorageError):
            MaintenanceSession.peek(session_dir)

    def test_peek_tolerates_torn_final_line(self, session, session_dir):
        session.apply(UpdateBatch.from_iterables(insertions=[[4, 5]]))
        with (session_dir / JOURNAL_NAME).open("a") as handle:
            handle.write('{"seq": 2, "torn')
        assert MaintenanceSession.peek(session_dir).pending_batches == 1

    def test_recovery_preserves_the_database_name(self, tmp_path):
        directory = tmp_path / "named"
        database = TransactionDatabase([[1, 2], [1, 2], [2, 3]], name="retail")
        created = MaintenanceSession.create(
            directory, database, min_support=0.5, min_confidence=0.5
        )
        _crash(created)
        reopened = MaintenanceSession.open(directory)
        assert reopened.database.name == "retail"
        _crash(reopened)

    def test_recovery_keeps_an_unnamed_database_unnamed(self, tmp_path):
        # load_database's filename-stem fallback must not rename the
        # database to "snapshot-0" on recovery.
        directory = tmp_path / "unnamed"
        created = MaintenanceSession.create(
            directory,
            TransactionDatabase([[1, 2], [1, 2], [2, 3]]),
            min_support=0.5,
            min_confidence=0.5,
        )
        _crash(created)
        reopened = MaintenanceSession.open(directory)
        assert reopened.database.name == ""
        _crash(reopened)


class TestHarnessRunner:
    def test_run_durable_session_creates_and_resumes(self, tmp_path, small_database):
        directory = tmp_path / "durable"
        first = run_durable_session(
            directory,
            [UpdateBatch.from_iterables(insertions=[[1, 4]], label="one")],
            database=small_database,
            min_support=0.3,
        )
        assert [record.seq for record in first] == [1]
        second = run_durable_session(
            directory,
            [UpdateBatch.from_iterables(insertions=[[2, 4]], label="two")],
        )
        assert [record.seq for record in second] == [2]
        assert second[0].database_size == 11
        assert set(second[0].as_dict()) >= {"seq", "label", "algorithm", "seconds"}

    def test_run_durable_session_requires_seed_for_new_directory(self, tmp_path):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            run_durable_session(tmp_path / "missing", [])

    def test_run_durable_session_surfaces_corruption(self, tmp_path, small_database):
        directory = tmp_path / "corrupt"
        directory.mkdir()
        (directory / MANIFEST_NAME).write_text("{not json")
        # A damaged session must raise its real diagnosis, not fall into the
        # create path and report "already holds a session".
        with pytest.raises(StorageError, match="not valid JSON"):
            run_durable_session(directory, [], database=small_database, min_support=0.3)

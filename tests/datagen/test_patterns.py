"""Unit tests for the potentially-large-itemset pool."""

from __future__ import annotations

import random

import pytest

from repro.datagen.patterns import PatternPool, PotentialItemset
from repro.errors import GeneratorConfigError


class TestPotentialItemset:
    def test_valid_pattern(self):
        pattern = PotentialItemset(items=(1, 2, 3), weight=0.5, corruption=0.3)
        assert pattern.items == (1, 2, 3)

    def test_rejects_empty_items(self):
        with pytest.raises(GeneratorConfigError):
            PotentialItemset(items=(), weight=0.5, corruption=0.3)

    def test_rejects_negative_weight(self):
        with pytest.raises(GeneratorConfigError):
            PotentialItemset(items=(1,), weight=-0.1, corruption=0.3)

    def test_rejects_bad_corruption(self):
        with pytest.raises(GeneratorConfigError):
            PotentialItemset(items=(1,), weight=0.1, corruption=1.0)


class TestPatternPool:
    def _pool(self, **overrides) -> PatternPool:
        params = {
            "rng": random.Random(3),
            "item_count": 100,
            "pool_size": 50,
            "mean_pattern_size": 4.0,
        }
        params.update(overrides)
        return PatternPool(**params)

    def test_pool_size(self):
        assert len(self._pool()) == 50

    def test_items_are_within_universe(self):
        pool = self._pool(item_count=20)
        for pattern in pool.patterns:
            assert all(0 <= item < 20 for item in pattern.items)

    def test_patterns_are_canonical(self):
        pool = self._pool()
        for pattern in pool.patterns:
            assert list(pattern.items) == sorted(set(pattern.items))

    def test_weights_sum_to_one(self):
        pool = self._pool()
        assert sum(pattern.weight for pattern in pool.patterns) == pytest.approx(1.0)

    def test_mean_pattern_size_is_respected(self):
        pool = self._pool(pool_size=400, mean_pattern_size=4.0)
        mean = sum(len(pattern.items) for pattern in pool.patterns) / len(pool)
        assert 2.5 < mean < 5.5

    def test_correlation_produces_overlap(self):
        pool = self._pool(pool_size=200, correlation=0.9)
        overlaps = 0
        for previous, current in zip(pool.patterns, pool.patterns[1:], strict=False):
            if set(previous.items) & set(current.items):
                overlaps += 1
        # With 90% correlation a clear majority of consecutive pairs overlap.
        assert overlaps > len(pool) / 2

    def test_zero_correlation_allowed(self):
        pool = self._pool(correlation=0.0)
        assert len(pool) == 50

    def test_sampling_follows_weights(self):
        pool = self._pool(pool_size=10)
        counts = {index: 0 for index in range(10)}
        index_of = {pattern.items: index for index, pattern in enumerate(pool.patterns)}
        for _ in range(3000):
            counts[index_of[pool.sample().items]] += 1
        heaviest = max(range(10), key=lambda index: pool.patterns[index].weight)
        lightest = min(range(10), key=lambda index: pool.patterns[index].weight)
        assert counts[heaviest] > counts[lightest]

    def test_planted_items_subset_of_pattern(self):
        pool = self._pool()
        pattern = pool.patterns[0]
        for _ in range(20):
            assert set(pool.planted_items(pattern)) <= set(pattern.items)

    def test_item_skew_biases_toward_low_item_ids(self):
        uniform = self._pool(item_skew=0.0, pool_size=300, correlation=0.0)
        skewed = self._pool(item_skew=2.0, pool_size=300, correlation=0.0)

        def mean_item(pool: PatternPool) -> float:
            items = [item for pattern in pool.patterns for item in pattern.items]
            return sum(items) / len(items)

        assert mean_item(skewed) < mean_item(uniform) * 0.7

    def test_zero_skew_spreads_items_evenly(self):
        pool = self._pool(item_skew=0.0, pool_size=500, correlation=0.0, item_count=10)
        counts = {}
        for pattern in pool.patterns:
            for item in pattern.items:
                counts[item] = counts.get(item, 0) + 1
        # Every item of a 10-item universe should appear somewhere in 500 patterns.
        assert len(counts) == 10

    def test_validation(self):
        with pytest.raises(GeneratorConfigError):
            self._pool(item_count=0)
        with pytest.raises(GeneratorConfigError):
            self._pool(pool_size=0)
        with pytest.raises(GeneratorConfigError):
            self._pool(mean_pattern_size=0.5)
        with pytest.raises(GeneratorConfigError):
            self._pool(correlation=1.5)
        with pytest.raises(GeneratorConfigError):
            self._pool(item_skew=-0.5)

"""Unit tests for the named paper workloads and their scaled variants."""

from __future__ import annotations

import pytest

from repro.datagen.workloads import (
    DEFAULT_BENCH_SCALE,
    make_workload,
    paper_workload,
    parse_workload_name,
    scaled_paper_workload,
)
from repro import SyntheticConfig
from repro.errors import GeneratorConfigError


class TestParseWorkloadName:
    def test_figure2_workload(self):
        config = parse_workload_name("T10.I4.D100.d1")
        assert config.mean_transaction_size == 10
        assert config.mean_pattern_size == 4
        assert config.database_size == 100_000
        assert config.increment_size == 1_000

    def test_scaleup_workload(self):
        config = parse_workload_name("T10.I4.D1000.d10")
        assert config.database_size == 1_000_000
        assert config.increment_size == 10_000

    def test_fractional_sizes(self):
        config = parse_workload_name("T5.I2.D0.5.d0.1")
        assert config.database_size == 500
        assert config.increment_size == 100

    def test_round_trip_with_config_name(self):
        config = parse_workload_name("T10.I4.D100.d1")
        assert config.name == "T10.I4.D100.d1"

    @pytest.mark.parametrize("bad", ["", "T10.D100.d1", "X10.I4.D100.d1", "T10.I4.D100"])
    def test_rejects_malformed_names(self, bad):
        with pytest.raises(GeneratorConfigError):
            parse_workload_name(bad)


class TestMakeWorkload:
    def test_small_custom_workload(self):
        config = SyntheticConfig(
            database_size=300, increment_size=60, item_count=80, pattern_count=60, seed=1
        )
        workload = make_workload(config)
        assert len(workload.original) == 300
        assert len(workload.increment) == 60
        assert len(workload.updated) == 360
        assert workload.name == config.name

    def test_updated_is_original_plus_increment(self):
        config = SyntheticConfig(
            database_size=100, increment_size=20, item_count=50, pattern_count=30, seed=2
        )
        workload = make_workload(config)
        assert list(workload.updated)[:100] == list(workload.original)
        assert list(workload.updated)[100:] == list(workload.increment)


class TestScaledWorkloads:
    def test_default_scale_shrinks_transaction_counts(self):
        workload = scaled_paper_workload(
            "T10.I4.D100.d1", scale=0.01, item_count=200, pattern_count=100
        )
        assert len(workload.original) == 1_000
        assert len(workload.increment) == 10

    def test_scale_one_matches_paper_sizes(self):
        config = parse_workload_name("T10.I4.D100.d1")
        workload_config = scaled_paper_workload.__wrapped__ if hasattr(
            scaled_paper_workload, "__wrapped__"
        ) else None
        assert workload_config is None  # plain function, no decorator surprises
        assert config.database_size == 100_000

    def test_scaled_name_mentions_scale(self):
        workload = scaled_paper_workload(
            "T10.I4.D100.d1", scale=0.005, item_count=100, pattern_count=50
        )
        assert "@x0.005" in workload.name

    def test_rejects_non_positive_scale(self):
        with pytest.raises(GeneratorConfigError):
            scaled_paper_workload("T10.I4.D100.d1", scale=0)

    def test_default_bench_scale_value(self):
        assert 0 < DEFAULT_BENCH_SCALE <= 1

    def test_custom_seed_changes_data(self):
        first = scaled_paper_workload(
            "T10.I4.D100.d1", scale=0.002, seed=1, item_count=100, pattern_count=50
        )
        second = scaled_paper_workload(
            "T10.I4.D100.d1", scale=0.002, seed=2, item_count=100, pattern_count=50
        )
        assert list(first.original) != list(second.original)


class TestPaperWorkload:
    def test_small_paper_scale_workload(self):
        # Use a tiny named workload so the full-size path is exercised quickly.
        workload = paper_workload("T5.I2.D0.2.d0.05")
        assert len(workload.original) == 200
        assert len(workload.increment) == 50
        assert workload.name == "T5.I2.D0.2.d0.05"

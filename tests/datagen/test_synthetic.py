"""Unit tests for the Tx.Iy.Dm.dn synthetic data generator."""

from __future__ import annotations

import pytest

from repro import SyntheticConfig, SyntheticDataGenerator, compute_stats, generate_database
from repro.errors import GeneratorConfigError


@pytest.fixture(scope="module")
def small_config() -> SyntheticConfig:
    return SyntheticConfig(
        database_size=800,
        increment_size=200,
        mean_transaction_size=8.0,
        mean_pattern_size=3.0,
        pattern_count=100,
        item_count=120,
        seed=5,
    )


@pytest.fixture(scope="module")
def generated(small_config):
    return SyntheticDataGenerator(small_config).generate()


class TestSyntheticConfig:
    def test_name_follows_paper_notation(self):
        config = SyntheticConfig(
            database_size=100_000,
            increment_size=1_000,
            mean_transaction_size=10,
            mean_pattern_size=4,
        )
        assert config.name == "T10.I4.D100.d1"

    def test_name_for_non_kilo_sizes(self):
        config = SyntheticConfig(database_size=500, increment_size=250)
        assert "D0.5" in config.name
        assert "d0.25" in config.name

    def test_with_increment_size(self, small_config):
        changed = small_config.with_increment_size(999)
        assert changed.increment_size == 999
        assert changed.database_size == small_config.database_size

    def test_with_database_size(self, small_config):
        assert small_config.with_database_size(42).database_size == 42

    @pytest.mark.parametrize(
        "field, value",
        [
            ("database_size", -1),
            ("increment_size", -5),
            ("mean_transaction_size", 0),
            ("mean_pattern_size", 0),
            ("pattern_count", 0),
            ("item_count", 0),
            ("clustering_size", 0),
            ("pool_size", 0),
            ("item_skew", -1.0),
        ],
    )
    def test_validation(self, field, value):
        with pytest.raises(GeneratorConfigError):
            SyntheticConfig(**{field: value})

    def test_item_skew_concentrates_support_on_head_items(self, small_config):
        skewed_config = SyntheticConfig(**{**small_config.__dict__, "item_skew": 2.0})
        flat_config = SyntheticConfig(**{**small_config.__dict__, "item_skew": 0.0})
        skewed, _ = SyntheticDataGenerator(skewed_config).generate()
        flat, _ = SyntheticDataGenerator(flat_config).generate()

        def top_item_share(database) -> float:
            counts = database.item_counts()
            total = sum(counts.values())
            top = sorted(counts.values(), reverse=True)[:10]
            return sum(top) / total

        assert top_item_share(skewed) > top_item_share(flat)


class TestGeneratedData:
    def test_sizes_match_config(self, small_config, generated):
        original, increment = generated
        assert len(original) == small_config.database_size
        assert len(increment) == small_config.increment_size

    def test_items_within_universe(self, small_config, generated):
        original, increment = generated
        assert all(0 <= item < small_config.item_count for item in original.items())
        assert all(0 <= item < small_config.item_count for item in increment.items())

    def test_mean_transaction_size_close_to_target(self, small_config, generated):
        original, _ = generated
        stats = compute_stats(original)
        assert stats.mean_transaction_size == pytest.approx(
            small_config.mean_transaction_size, rel=0.35
        )

    def test_increment_follows_same_distribution(self, small_config, generated):
        # The paper builds DB and db from one generation run precisely so they
        # share the statistical pattern; the mean sizes should be close.
        original, increment = generated
        original_mean = compute_stats(original).mean_transaction_size
        increment_mean = compute_stats(increment).mean_transaction_size
        assert increment_mean == pytest.approx(original_mean, rel=0.25)

    def test_deterministic_for_same_seed(self, small_config):
        first = SyntheticDataGenerator(small_config).generate()
        second = SyntheticDataGenerator(small_config).generate()
        assert list(first[0]) == list(second[0])
        assert list(first[1]) == list(second[1])

    def test_different_seeds_differ(self, small_config):
        other = SyntheticConfig(**{**small_config.__dict__, "seed": 99})
        first = SyntheticDataGenerator(small_config).generate()
        second = SyntheticDataGenerator(other).generate()
        assert list(first[0]) != list(second[0])

    def test_transactions_are_canonical(self, generated):
        original, _ = generated
        for transaction in original:
            assert list(transaction) == sorted(set(transaction))

    def test_data_contains_frequent_pairs(self, generated):
        # The planted patterns must produce at least one frequent 2-itemset at
        # a low threshold, otherwise the generator is not planting correlations.
        from repro import AprioriMiner

        original, _ = generated
        result = AprioriMiner(0.02).mine(original)
        assert result.lattice.max_size() >= 2

    def test_generate_updated_concatenates(self, small_config):
        generator = SyntheticDataGenerator(small_config)
        updated = generator.generate_updated()
        assert len(updated) == small_config.database_size + small_config.increment_size

    def test_zero_increment(self):
        config = SyntheticConfig(database_size=50, increment_size=0, item_count=30, pattern_count=20)
        original, increment = generate_database(config)
        assert len(original) == 50
        assert len(increment) == 0

    def test_module_level_wrapper(self, small_config):
        original, increment = generate_database(small_config)
        assert len(original) == small_config.database_size
        assert len(increment) == small_config.increment_size

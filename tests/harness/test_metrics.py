"""Unit tests for the harness run records and derived ratios."""

from __future__ import annotations

import pytest

from repro import AprioriMiner
from repro.harness.metrics import ComparisonRecord, RunRecord, speedup


class TestSpeedup:
    def test_plain_ratio(self):
        assert speedup(2.0, 0.5) == pytest.approx(4.0)

    def test_slower_candidate(self):
        assert speedup(1.0, 2.0) == pytest.approx(0.5)

    def test_zero_candidate_time_is_finite(self):
        assert speedup(1.0, 0.0) > 0
        assert speedup(0.0, 0.0) == pytest.approx(1.0)


class TestRunRecord:
    def test_from_result(self, small_database):
        result = AprioriMiner(0.3).mine(small_database)
        record = RunRecord.from_result("small", result)
        assert record.workload == "small"
        assert record.algorithm == "apriori"
        assert record.large_itemsets == len(result.lattice)
        assert record.candidates_generated == result.candidates_generated

    def test_as_dict_keys(self, small_database):
        record = RunRecord.from_result("small", AprioriMiner(0.3).mine(small_database))
        as_dict = record.as_dict()
        assert as_dict["workload"] == "small"
        assert as_dict["algorithm"] == "apriori"
        assert "elapsed_seconds" in as_dict
        assert "candidates" in as_dict


class TestComparisonRecord:
    def _record(self) -> ComparisonRecord:
        return ComparisonRecord(
            workload="w",
            min_support=0.02,
            baseline="dhp",
            baseline_seconds=4.0,
            fup_seconds=1.0,
            baseline_candidates=1000,
            fup_candidates=30,
        )

    def test_speedup(self):
        assert self._record().speedup == pytest.approx(4.0)

    def test_candidate_ratio(self):
        assert self._record().candidate_ratio == pytest.approx(0.03)

    def test_candidate_ratio_with_zero_baseline(self):
        record = ComparisonRecord(
            workload="w",
            min_support=0.02,
            baseline="dhp",
            baseline_seconds=1.0,
            fup_seconds=1.0,
            baseline_candidates=0,
            fup_candidates=0,
        )
        assert record.candidate_ratio == 0.0

    def test_as_dict(self):
        as_dict = self._record().as_dict()
        assert as_dict["baseline"] == "dhp"
        assert as_dict["speedup"] == pytest.approx(4.0)
        assert as_dict["candidate_ratio"] == pytest.approx(0.03)

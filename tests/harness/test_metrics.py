"""Unit tests for the harness run records and derived ratios."""

from __future__ import annotations

import pytest

from repro import AprioriMiner
from repro.harness.metrics import (
    ComparisonRecord,
    LatencySummary,
    RunRecord,
    percentile,
    speedup,
)


class TestSpeedup:
    def test_plain_ratio(self):
        assert speedup(2.0, 0.5) == pytest.approx(4.0)

    def test_slower_candidate(self):
        assert speedup(1.0, 2.0) == pytest.approx(0.5)

    def test_zero_candidate_time_is_finite(self):
        assert speedup(1.0, 0.0) > 0
        assert speedup(0.0, 0.0) == pytest.approx(1.0)


class TestRunRecord:
    def test_from_result(self, small_database):
        result = AprioriMiner(0.3).mine(small_database)
        record = RunRecord.from_result("small", result)
        assert record.workload == "small"
        assert record.algorithm == "apriori"
        assert record.large_itemsets == len(result.lattice)
        assert record.candidates_generated == result.candidates_generated

    def test_as_dict_keys(self, small_database):
        record = RunRecord.from_result("small", AprioriMiner(0.3).mine(small_database))
        as_dict = record.as_dict()
        assert as_dict["workload"] == "small"
        assert as_dict["algorithm"] == "apriori"
        assert "elapsed_seconds" in as_dict
        assert "candidates" in as_dict


class TestComparisonRecord:
    def _record(self) -> ComparisonRecord:
        return ComparisonRecord(
            workload="w",
            min_support=0.02,
            baseline="dhp",
            baseline_seconds=4.0,
            fup_seconds=1.0,
            baseline_candidates=1000,
            fup_candidates=30,
        )

    def test_speedup(self):
        assert self._record().speedup == pytest.approx(4.0)

    def test_candidate_ratio(self):
        assert self._record().candidate_ratio == pytest.approx(0.03)

    def test_candidate_ratio_with_zero_baseline(self):
        record = ComparisonRecord(
            workload="w",
            min_support=0.02,
            baseline="dhp",
            baseline_seconds=1.0,
            fup_seconds=1.0,
            baseline_candidates=0,
            fup_candidates=0,
        )
        assert record.candidate_ratio == 0.0

    def test_as_dict(self):
        as_dict = self._record().as_dict()
        assert as_dict["baseline"] == "dhp"
        assert as_dict["speedup"] == pytest.approx(4.0)
        assert as_dict["candidate_ratio"] == pytest.approx(0.03)


class TestPercentile:
    def test_nearest_rank_returns_observed_samples(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert percentile(samples, 0.50) == 5.0
        assert percentile(samples, 0.99) == 10.0
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 10.0

    def test_single_sample(self):
        assert percentile([42.0], 0.99) == 42.0

    def test_never_interpolates(self):
        # A tail gap must return a real observation, not an invented value.
        samples = [1.0] * 98 + [100.0, 1000.0]
        assert percentile(samples, 0.99) in samples

    def test_rejects_empty_and_bad_fraction(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestLatencySummary:
    def test_from_samples(self):
        latencies = [0.001 * (index + 1) for index in range(100)]  # 1..100ms
        summary = LatencySummary.from_samples(latencies, wall_seconds=2.0)
        assert summary.requests == 100
        assert summary.queries == 100
        assert summary.p50_ms == pytest.approx(50.0)
        assert summary.p99_ms == pytest.approx(99.0)
        assert summary.max_ms == pytest.approx(100.0)
        assert summary.requests_per_second == pytest.approx(50.0)

    def test_batched_queries_scale_the_rate(self):
        summary = LatencySummary.from_samples(
            [0.01] * 10, wall_seconds=1.0, queries_per_request=16
        )
        assert summary.requests == 10
        assert summary.queries == 160
        assert summary.queries_per_second == pytest.approx(160.0)
        assert summary.requests_per_second == pytest.approx(10.0)

    def test_empty_run_is_all_zeros(self):
        summary = LatencySummary.from_samples([], wall_seconds=5.0)
        assert summary.requests == 0
        assert summary.queries_per_second == 0.0
        assert summary.p99_ms == 0.0

    def test_rejects_bad_queries_per_request(self):
        with pytest.raises(ValueError):
            LatencySummary.from_samples([0.01], 1.0, queries_per_request=0)

    def test_as_dict_round_trips_the_reported_fields(self):
        summary = LatencySummary.from_samples([0.002, 0.004], wall_seconds=1.0)
        as_dict = summary.as_dict()
        assert as_dict["requests"] == 2
        assert as_dict["p50_ms"] == pytest.approx(2.0)
        assert as_dict["queries_per_second"] == pytest.approx(2.0)

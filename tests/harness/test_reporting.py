"""Unit tests for the plain-text report rendering."""

from __future__ import annotations

from repro.harness.metrics import ComparisonRecord
from repro.harness.reporting import format_series, format_table, render_records


class TestFormatTable:
    def test_header_and_rows(self):
        rows = [{"a": 1, "b": "x"}, {"a": 22, "b": "yy"}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b"]
        assert "22" in lines[3]

    def test_title_line(self):
        text = format_table([{"a": 1}], title="Figure 2")
        assert text.splitlines()[0] == "Figure 2"

    def test_explicit_column_selection_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        assert text.splitlines()[0].split() == ["c", "a"]
        assert "2" not in text.splitlines()[2]

    def test_missing_column_renders_empty(self):
        text = format_table([{"a": 1}], columns=["a", "zz"])
        assert "zz" in text

    def test_float_formatting(self):
        text = format_table([{"ratio": 0.123456}])
        assert "0.1235" in text

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])
        assert format_table([], title="t").startswith("t")

    def test_columns_are_aligned(self):
        rows = [{"name": "a", "value": 1}, {"name": "longer", "value": 22}]
        lines = format_table(rows).splitlines()
        assert len(lines[2]) == len(lines[3]) or lines[2].rstrip() != lines[3].rstrip()
        # Every data line starts its second column at the same offset.
        offset_first = lines[2].index("1")
        offset_second = lines[3].index("22")
        assert offset_first == offset_second


class TestFormatSeries:
    def test_series_rendering(self):
        text = format_series("x", "y", [(1, 2.0), (3, 4.0)], title="Figure 4")
        lines = text.splitlines()
        assert lines[0] == "Figure 4"
        assert lines[1].split() == ["x", "y"]
        assert lines[3].split() == ["1", "2.0000"]


class TestRenderRecords:
    def test_records_with_as_dict(self):
        record = ComparisonRecord(
            workload="w",
            min_support=0.02,
            baseline="dhp",
            baseline_seconds=2.0,
            fup_seconds=1.0,
            baseline_candidates=100,
            fup_candidates=5,
        )
        text = render_records([record], title="ratios")
        assert "ratios" in text
        assert "dhp" in text
        assert "2.0" in text

"""Tests of the declarative paper-reproduction experiment suite."""

from __future__ import annotations

import json

import pytest

from repro.errors import ExperimentError
from repro.harness.experiments import (
    DOCS_BEGIN,
    DOCS_END,
    EngineSpec,
    ExperimentMatrix,
    ReproductionReport,
    embed_generated_block,
    generated_block_drift,
    run_matrix,
    work_speedup,
)

#: A deliberately tiny matrix so the full pipeline runs in well under a second.
TINY = ExperimentMatrix(
    workload="T5.I2.D1.d1",
    scale=0.2,  # |DB| = 200, |d| = 200
    supports=(0.1,),
    increment_fractions=(0.25, 1.0),
    engines=(EngineSpec("vertical"), EngineSpec("partitioned", 3, "threads")),
    label="tiny",
)


@pytest.fixture(scope="module")
def tiny_report() -> ReproductionReport:
    return run_matrix(TINY)


# --------------------------------------------------------------------- #
# EngineSpec
# --------------------------------------------------------------------- #
def test_engine_spec_parse_round_trip():
    for text in ("horizontal", "vertical", "partitioned:8:processes:2"):
        assert EngineSpec.parse(text).label == text
    spec = EngineSpec.parse("partitioned:2")
    assert (spec.shards, spec.executor, spec.workers) == (2, "threads", None)


def test_engine_spec_rejects_nonsense():
    with pytest.raises(ExperimentError):
        EngineSpec.parse("columnar")
    with pytest.raises(ExperimentError):
        EngineSpec.parse("partitioned:4:fibers")
    with pytest.raises(ExperimentError):
        EngineSpec.parse("partitioned:4:threads:2:extra")
    with pytest.raises(ExperimentError):
        EngineSpec.parse("")
    with pytest.raises(ExperimentError):
        EngineSpec.parse("partitioned:x")  # non-numeric shard count
    with pytest.raises(ExperimentError):
        EngineSpec.parse("partitioned:4:processes:many")
    with pytest.raises(ExperimentError):
        EngineSpec.parse("partitioned:0")  # non-positive shard count
    with pytest.raises(ExperimentError):
        EngineSpec.parse("partitioned:4:threads:0")


def test_cli_arguments_reproduce_the_matrix():
    assert ExperimentMatrix.quick().cli_arguments() == "--quick"
    assert ExperimentMatrix().cli_arguments() == ""
    flags = TINY.cli_arguments()
    assert "--workload T5.I2.D1.d1" in flags
    assert "--scale 0.2" in flags
    assert "--supports 0.1" in flags
    assert "--increments 0.25,1" in flags
    assert "--engines vertical,partitioned:3:threads" in flags


def test_work_speedup_guards_zero():
    assert work_speedup(100, 0) == 100.0
    assert work_speedup(0, 50) == 0.0


# --------------------------------------------------------------------- #
# run_matrix
# --------------------------------------------------------------------- #
def test_matrix_runs_every_cell(tiny_report):
    assert len(tiny_report.cells) == (
        len(TINY.supports) * len(TINY.increment_fractions) * len(TINY.engines)
    )
    for cell in tiny_report.cells:
        assert cell.comparison.consistent()
        assert cell.increment_size >= 1


def test_progress_callback_fires():
    messages: list[str] = []
    run_matrix(TINY, progress=messages.append)
    assert len(messages) == len(TINY.supports) * len(TINY.increment_fractions) * len(
        TINY.engines
    )
    assert any("mining initial state" in message for message in messages)
    assert any("cached initial state" in message for message in messages)


def test_work_rows_identical_across_engines(tiny_report):
    """Engines change how counting runs, never what is counted."""
    by_key: dict[tuple[float, float], set[tuple]] = {}
    for cell in tiny_report.cells:
        row = cell.work_row()
        key = (cell.increment_fraction, cell.min_support)
        row_without_engine = tuple(
            value for label, value in row.items() if label != "engine"
        )
        by_key.setdefault(key, set()).add(row_without_engine)
    for key, variants in by_key.items():
        assert len(variants) == 1, f"work ratios differ across engines at {key}"


def test_report_renders_and_serialises(tiny_report, tmp_path):
    assert "work ratios at |d| =" in tiny_report.work_tables()
    assert "candidate-pool ratio" in tiny_report.work_chart()
    assert "measured speedups" in tiny_report.timing_tables()
    assert "measured FUP speedup" in tiny_report.timing_chart()
    markdown = tiny_report.deterministic_markdown()
    assert "Do **not** edit between the markers" in markdown

    path = tiny_report.write_json(tmp_path / "BENCH_reproduction.json")
    payload = json.loads(path.read_text())
    assert payload["benchmark"] == "paper_reproduction"
    assert payload["matrix"]["label"] == "tiny"
    assert len(payload["rows"]) == 3 * len(tiny_report.cells)  # fup/apriori/dhp
    strategies = {row["strategy"] for row in payload["rows"]}
    assert strategies == {"fup", "apriori", "dhp"}


def test_deterministic_markdown_is_stable(tiny_report):
    again = run_matrix(TINY)
    assert again.deterministic_markdown() == tiny_report.deterministic_markdown()


# --------------------------------------------------------------------- #
# Docs embedding
# --------------------------------------------------------------------- #
DOC = f"intro\n\n{DOCS_BEGIN}\nstale tables\n{DOCS_END}\n\noutro\n"


def test_embed_generated_block_replaces_only_the_block():
    updated = embed_generated_block(DOC, "fresh tables")
    assert updated.startswith("intro\n")
    assert updated.endswith("outro\n")
    assert "stale tables" not in updated
    assert f"{DOCS_BEGIN}\nfresh tables\n{DOCS_END}" in updated
    # Idempotent: embedding the same text again changes nothing.
    assert embed_generated_block(updated, "fresh tables") == updated


def test_embed_requires_markers():
    with pytest.raises(ExperimentError):
        embed_generated_block("no markers here", "tables")


def test_generated_block_drift_reporting():
    in_sync = embed_generated_block(DOC, "line one\nline two")
    assert generated_block_drift(in_sync, "line one\nline two") is None
    drift = generated_block_drift(in_sync, "line one\nline 2")
    assert drift is not None and "line 2" in drift
    longer = generated_block_drift(in_sync, "line one\nline two\nline three")
    assert longer is not None and "length changed" in longer

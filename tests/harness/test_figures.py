"""Unit tests for the ASCII chart rendering."""

from __future__ import annotations

from repro.harness.figures import bar_chart, grouped_bar_chart


class TestBarChart:
    def test_longest_bar_spans_full_width(self):
        chart = bar_chart([("a", 1.0), ("b", 4.0)], width=20)
        lines = chart.splitlines()
        assert lines[1].count("#") == 20
        assert lines[0].count("#") == 5

    def test_values_are_printed(self):
        chart = bar_chart([("fup", 2.5)], value_format="{:.1f}")
        assert "2.5" in chart

    def test_title(self):
        chart = bar_chart([("a", 1.0)], title="Figure 2")
        assert chart.splitlines()[0] == "Figure 2"

    def test_zero_values_have_no_bar(self):
        chart = bar_chart([("a", 0.0), ("b", 3.0)])
        assert "#" not in chart.splitlines()[0]

    def test_empty_points(self):
        assert "(no data)" in bar_chart([])

    def test_labels_are_aligned(self):
        chart = bar_chart([("short", 1.0), ("much-longer-label", 2.0)])
        lines = chart.splitlines()
        assert lines[0].index("#") == lines[1].index("#")

    def test_small_nonzero_values_get_a_visible_bar(self):
        chart = bar_chart([("tiny", 0.001), ("big", 100.0)], width=10)
        assert chart.splitlines()[0].count("#") == 1


class TestGroupedBarChart:
    def test_groups_and_series(self):
        chart = grouped_bar_chart(
            [
                ("2%", [("dhp/fup", 4.0), ("apriori/fup", 5.0)]),
                ("1%", [("dhp/fup", 6.0), ("apriori/fup", 8.0)]),
            ],
            title="ratios",
        )
        lines = chart.splitlines()
        assert lines[0] == "ratios"
        assert lines[1] == "2%:"
        assert any("apriori/fup" in line for line in lines)

    def test_shared_scale_across_groups(self):
        chart = grouped_bar_chart(
            [("g1", [("s", 1.0)]), ("g2", [("s", 2.0)])], width=10
        )
        bars = [line.count("#") for line in chart.splitlines() if "#" in line]
        assert bars == [5, 10]

    def test_empty_groups(self):
        assert "(no data)" in grouped_bar_chart([])

"""Unit tests for the experiment runner."""

from __future__ import annotations

import pytest

from repro import AprioriMiner, TransactionDatabase
from repro.errors import ExperimentError
from repro.harness.runner import (
    ExperimentRunner,
    compare_update_strategies,
    measure_fup_overhead,
    run_fup_update,
    run_miner,
)


@pytest.fixture(scope="module")
def workload_pair():
    import random

    rng = random.Random(12)
    universe = list(range(18))
    rows = [rng.sample(universe, rng.randint(2, 8)) for _ in range(280)]
    original = TransactionDatabase(rows[:230], name="runner-original")
    increment = TransactionDatabase(rows[230:], name="runner-increment")
    return original, increment


class TestRunMiner:
    def test_apriori_and_dhp(self, workload_pair):
        original, _ = workload_pair
        apriori = run_miner("apriori", original, 0.1)
        dhp = run_miner("dhp", original, 0.1)
        assert apriori.lattice.supports() == dhp.lattice.supports()

    def test_unknown_miner(self, workload_pair):
        original, _ = workload_pair
        with pytest.raises(ExperimentError):
            run_miner("eclat", original, 0.1)


class TestCompareUpdateStrategies:
    def test_all_strategies_agree(self, workload_pair):
        original, increment = workload_pair
        comparison = compare_update_strategies(original, increment, 0.1, workload="runner")
        assert comparison.consistent()

    def test_records_expose_ratios(self, workload_pair):
        original, increment = workload_pair
        comparison = compare_update_strategies(original, increment, 0.1)
        assert comparison.against_apriori.speedup > 0
        assert comparison.against_dhp.speedup > 0
        assert 0 <= comparison.against_dhp.candidate_ratio <= 1.5

    def test_fup_reduces_candidates(self, workload_pair):
        original, increment = workload_pair
        comparison = compare_update_strategies(original, increment, 0.08)
        assert comparison.fup.candidates_generated < comparison.apriori.candidates_generated

    def test_accepts_precomputed_initial_result(self, workload_pair):
        original, increment = workload_pair
        initial = AprioriMiner(0.1).mine(original)
        comparison = compare_update_strategies(
            original, increment, 0.1, initial=initial
        )
        assert comparison.initial is initial
        assert comparison.consistent()


class TestOverheadMeasurement:
    def test_overhead_record_fields(self, workload_pair):
        original, increment = workload_pair
        record = measure_fup_overhead(original, increment, 0.1, workload="runner")
        assert record.mine_original_seconds > 0
        assert record.fup_update_seconds > 0
        assert record.mine_updated_seconds > 0
        assert record.overhead_seconds == pytest.approx(
            record.mine_original_seconds
            + record.fup_update_seconds
            - record.mine_updated_seconds
        )
        assert record.as_dict()["workload"] == "runner"

    def test_run_fup_update_matches_remining(self, workload_pair):
        original, increment = workload_pair
        initial = AprioriMiner(0.1).mine(original)
        fup = run_fup_update(original, initial, increment, 0.1)
        remined = AprioriMiner(0.1).mine(original.concatenate(increment))
        assert fup.lattice.supports() == remined.lattice.supports()


class TestExperimentRunner:
    def test_sweep_produces_one_comparison_per_support(self, workload_pair):
        original, increment = workload_pair
        runner = ExperimentRunner(original, increment, workload="runner")
        comparisons = runner.sweep([0.15, 0.1])
        assert len(comparisons) == 2
        assert all(comparison.consistent() for comparison in comparisons)

    def test_initial_result_is_cached(self, workload_pair):
        original, increment = workload_pair
        runner = ExperimentRunner(original, increment)
        first = runner.initial_result(0.1)
        second = runner.initial_result(0.1)
        assert first is second

    def test_run_records(self, workload_pair):
        original, increment = workload_pair
        runner = ExperimentRunner(original, increment, workload="runner")
        records = runner.run_records(0.1)
        assert [record.algorithm for record in records] == ["fup", "apriori", "dhp"]
        assert all(record.workload == "runner" for record in records)

"""Unit tests for the in-memory transaction database."""

from __future__ import annotations

import pytest

from repro import TransactionDatabase
from repro.errors import InvalidTransactionError


class TestConstruction:
    def test_empty_database(self):
        database = TransactionDatabase()
        assert len(database) == 0
        assert database.items() == set()

    def test_transactions_are_canonicalised(self):
        database = TransactionDatabase([[3, 1, 1, 2]])
        assert database[0] == (1, 2, 3)

    def test_empty_transactions_are_kept(self):
        database = TransactionDatabase([[], [1]])
        assert len(database) == 2
        assert database[0] == ()

    def test_rejects_invalid_items(self):
        with pytest.raises(InvalidTransactionError):
            TransactionDatabase([[1, -5]])

    def test_rejects_non_iterable_transaction(self):
        with pytest.raises(InvalidTransactionError):
            TransactionDatabase([42])  # type: ignore[list-item]

    def test_rejects_string_items(self):
        with pytest.raises(InvalidTransactionError):
            TransactionDatabase([["a", "b"]])

    def test_from_transactions_classmethod(self):
        database = TransactionDatabase.from_transactions([[1], [2]], name="x")
        assert len(database) == 2
        assert database.name == "x"


class TestContainerProtocol:
    def test_iteration_order_preserved(self):
        rows = [[1, 2], [3], [2, 4]]
        database = TransactionDatabase(rows)
        assert list(database) == [(1, 2), (3,), (2, 4)]

    def test_indexing(self, small_database):
        assert small_database[0] == (1, 2, 3)

    def test_equality(self):
        assert TransactionDatabase([[1, 2]]) == TransactionDatabase([[2, 1]])

    def test_inequality(self):
        assert TransactionDatabase([[1]]) != TransactionDatabase([[2]])

    def test_equality_with_other_types(self):
        assert TransactionDatabase([[1]]) != [[1]]

    def test_size_property(self, small_database):
        assert small_database.size == len(small_database) == 9


class TestMutation:
    def test_append(self):
        database = TransactionDatabase()
        database.append([2, 1])
        assert database[0] == (1, 2)

    def test_extend(self):
        database = TransactionDatabase([[1]])
        database.extend([[2], [3]])
        assert len(database) == 3

    def test_extend_validates(self):
        database = TransactionDatabase()
        with pytest.raises(InvalidTransactionError):
            database.extend([[1], [-1]])

    def test_remove_batch_removes_one_copy_each(self):
        database = TransactionDatabase([[1, 2], [1, 2], [3]])
        removed = database.remove_batch([[2, 1]])
        assert removed == 1
        assert list(database) == [(1, 2), (3,)]

    def test_remove_batch_multiset_semantics(self):
        database = TransactionDatabase([[1], [1], [1]])
        removed = database.remove_batch([[1], [1]])
        assert removed == 2
        assert len(database) == 1

    def test_remove_batch_ignores_missing(self):
        database = TransactionDatabase([[1]])
        removed = database.remove_batch([[9]])
        assert removed == 0
        assert len(database) == 1

    def test_remove_batch_empty(self):
        database = TransactionDatabase([[1]])
        assert database.remove_batch([]) == 0

    def test_copy_is_independent(self, small_database):
        clone = small_database.copy()
        clone.append([7, 8])
        assert len(clone) == len(small_database) + 1

    def test_copy_can_rename(self, small_database):
        assert small_database.copy(name="renamed").name == "renamed"


class TestQueries:
    def test_items(self, small_database):
        assert small_database.items() == {1, 2, 3, 4}

    def test_item_counts(self):
        database = TransactionDatabase([[1, 2], [2], [2, 3]])
        counts = database.item_counts()
        assert counts[2] == 3
        assert counts[1] == 1
        assert counts[3] == 1

    def test_count_itemset(self, small_database):
        assert small_database.count_itemset((1, 2)) == 5
        assert small_database.count_itemset((1, 2, 3)) == 3
        assert small_database.count_itemset((5,)) == 0

    def test_slice(self, small_database):
        head = small_database.slice(0, 3)
        assert len(head) == 3
        assert head[0] == small_database[0]

    def test_slice_to_end(self, small_database):
        tail = small_database.slice(7)
        assert len(tail) == 2

    def test_concatenate(self, small_database, small_increment):
        combined = small_database.concatenate(small_increment)
        assert len(combined) == len(small_database) + len(small_increment)
        assert combined[len(small_database)] == small_increment[0]

    def test_concatenate_does_not_mutate_inputs(self, small_database, small_increment):
        before = len(small_database)
        small_database.concatenate(small_increment)
        assert len(small_database) == before

    def test_transactions_view(self, small_database):
        assert len(small_database.transactions()) == 9

"""Unit tests for the in-memory transaction database."""

from __future__ import annotations

from collections import Counter

import pytest

from repro import TransactionDatabase
from repro.db.transaction_db import _SMALL_DELETE_BATCH
from repro.errors import InvalidTransactionError, StaleStateError


class TestConstruction:
    def test_empty_database(self):
        database = TransactionDatabase()
        assert len(database) == 0
        assert database.items() == set()

    def test_transactions_are_canonicalised(self):
        database = TransactionDatabase([[3, 1, 1, 2]])
        assert database[0] == (1, 2, 3)

    def test_empty_transactions_are_kept(self):
        database = TransactionDatabase([[], [1]])
        assert len(database) == 2
        assert database[0] == ()

    def test_rejects_invalid_items(self):
        with pytest.raises(InvalidTransactionError):
            TransactionDatabase([[1, -5]])

    def test_rejects_non_iterable_transaction(self):
        with pytest.raises(InvalidTransactionError):
            TransactionDatabase([42])  # type: ignore[list-item]

    def test_rejects_string_items(self):
        with pytest.raises(InvalidTransactionError):
            TransactionDatabase([["a", "b"]])

    def test_from_transactions_classmethod(self):
        database = TransactionDatabase.from_transactions([[1], [2]], name="x")
        assert len(database) == 2
        assert database.name == "x"


class TestContainerProtocol:
    def test_iteration_order_preserved(self):
        rows = [[1, 2], [3], [2, 4]]
        database = TransactionDatabase(rows)
        assert list(database) == [(1, 2), (3,), (2, 4)]

    def test_indexing(self, small_database):
        assert small_database[0] == (1, 2, 3)

    def test_equality(self):
        assert TransactionDatabase([[1, 2]]) == TransactionDatabase([[2, 1]])

    def test_inequality(self):
        assert TransactionDatabase([[1]]) != TransactionDatabase([[2]])

    def test_equality_with_other_types(self):
        assert TransactionDatabase([[1]]) != [[1]]

    def test_size_property(self, small_database):
        assert small_database.size == len(small_database) == 9


class TestMutation:
    def test_append(self):
        database = TransactionDatabase()
        database.append([2, 1])
        assert database[0] == (1, 2)

    def test_extend(self):
        database = TransactionDatabase([[1]])
        database.extend([[2], [3]])
        assert len(database) == 3

    def test_extend_validates(self):
        database = TransactionDatabase()
        with pytest.raises(InvalidTransactionError):
            database.extend([[1], [-1]])

    def test_remove_batch_removes_one_copy_each(self):
        database = TransactionDatabase([[1, 2], [1, 2], [3]])
        removed = database.remove_batch([[2, 1]])
        assert removed == 1
        assert list(database) == [(1, 2), (3,)]

    def test_remove_batch_multiset_semantics(self):
        database = TransactionDatabase([[1], [1], [1]])
        removed = database.remove_batch([[1], [1]])
        assert removed == 2
        assert len(database) == 1

    def test_remove_batch_ignores_missing(self):
        database = TransactionDatabase([[1]])
        removed = database.remove_batch([[9]])
        assert removed == 0
        assert len(database) == 1

    def test_remove_batch_empty(self):
        database = TransactionDatabase([[1]])
        assert database.remove_batch([]) == 0

    def test_copy_is_independent(self, small_database):
        clone = small_database.copy()
        clone.append([7, 8])
        assert len(clone) == len(small_database) + 1

    def test_copy_can_rename(self, small_database):
        assert small_database.copy(name="renamed").name == "renamed"


class TestStrictRemoval:
    def test_strict_removes_existing(self):
        database = TransactionDatabase([[1, 2], [3], [1, 2]])
        assert database.remove_batch([[2, 1], [3]], strict=True) == 2
        assert list(database) == [(1, 2)]

    def test_strict_raises_naming_the_phantom(self):
        database = TransactionDatabase([[1, 2], [3]])
        with pytest.raises(StaleStateError, match=r"\(7, 8\)"):
            database.remove_batch([[1, 2], [7, 8]], strict=True)

    def test_strict_failure_leaves_database_untouched(self):
        database = TransactionDatabase([[1, 2], [3]])
        database.vertical()
        before = list(database)
        vertical_before = dict(database.vertical())
        with pytest.raises(StaleStateError):
            database.remove_batch([[1, 2], [9]], strict=True)
        assert list(database) == before
        assert dict(database.vertical()) == vertical_before

    def test_strict_counts_multiplicity(self):
        # Two stored copies, three requested: the third is a phantom.
        database = TransactionDatabase([[1], [1], [2]])
        with pytest.raises(StaleStateError, match="1 transaction"):
            database.remove_batch([[1], [1], [1]], strict=True)
        assert len(database) == 3

    def test_strict_large_batch_takes_the_scan_path(self):
        rows = [[i, i + 1] for i in range(_SMALL_DELETE_BATCH + 10)]
        database = TransactionDatabase(rows)
        batch = [list(row) for row in rows] + [[500, 501]]
        with pytest.raises(StaleStateError, match=r"\(500, 501\)"):
            database.remove_batch(batch, strict=True)
        assert len(database) == len(rows)
        assert database.remove_batch(batch[:-1], strict=True) == len(rows)
        assert len(database) == 0

    def test_held_transactions_view_stays_a_snapshot(self):
        # Both removal paths must leave a previously handed-out
        # transactions() view untouched.
        database = TransactionDatabase([[i] for i in range(40)])
        view = database.transactions()
        database.remove_batch([[0]])  # fast path
        assert len(view) == 40
        view = database.transactions()
        database.remove_batch([[i] for i in range(1, _SMALL_DELETE_BATCH + 3)])  # scan path
        assert len(view) == 39

    def test_fast_and_scan_paths_agree(self):
        rows = [[1, 2], [3], [1, 2], [4, 5], [3]] * 8
        batch = [[1, 2], [3], [1, 2], [9]]
        small = TransactionDatabase(rows)
        large = TransactionDatabase(rows)
        # Same batch through both paths: padded duplicates push the second
        # call over the fast-path threshold without changing the multiset.
        small.remove_batch(batch)
        large.remove_batch(batch + [[9]] * _SMALL_DELETE_BATCH)
        assert list(small) == list(large)


class TestItemUniverseCache:
    def test_items_served_from_cache_after_mutations(self, small_database):
        assert not small_database.has_item_universe
        assert small_database.items() == {1, 2, 3, 4}
        assert small_database.has_item_universe
        small_database.append([7])
        small_database.extend([[8, 9]])
        assert small_database.items() == {1, 2, 3, 4, 7, 8, 9}

    def test_removal_drops_items_that_disappear(self):
        database = TransactionDatabase([[1, 2], [2, 3]])
        assert database.items() == {1, 2, 3}
        database.remove_batch([[1, 2]])
        assert database.items() == {2, 3}
        database.remove_batch([[2, 3]])
        assert database.items() == set()

    def test_item_counts_match_scratch_after_session(self):
        database = TransactionDatabase([[1, 2], [2], [2, 3]])
        database.item_counts()  # prime the cache
        database.extend([[1, 3], [2]])
        database.remove_batch([[2], [2, 3]])
        scratch = Counter()
        for row in database.transactions():
            scratch.update(row)
        assert database.item_counts() == scratch

    def test_item_counts_returns_a_safe_copy(self):
        database = TransactionDatabase([[1]])
        counts = database.item_counts()
        counts[1] = 99
        assert database.item_counts()[1] == 1

    def test_copy_carries_the_cache(self, small_database):
        small_database.items()
        clone = small_database.copy()
        assert clone.has_item_universe
        clone.append([7])
        assert clone.items() == {1, 2, 3, 4, 7}
        assert small_database.items() == {1, 2, 3, 4}


class TestTransactionMultiset:
    def test_multiset_counts_duplicates(self):
        database = TransactionDatabase([[1], [1], [2, 3]])
        assert database.transaction_multiset() == Counter({(1,): 2, (2, 3): 1})

    def test_multiset_is_delta_maintained(self):
        database = TransactionDatabase([[1], [2]])
        database.transaction_multiset()
        database.append([1])
        database.remove_batch([[2]])
        assert database.transaction_multiset() == Counter({(1,): 2})
        assert database.has_transaction_multiset

    def test_missing_transactions_respects_multiplicity(self):
        database = TransactionDatabase([[1], [1], [2]])
        missing = database.missing_transactions([[1], [1], [1], [9]])
        assert missing == Counter({(1,): 1, (9,): 1})

    def test_missing_transactions_empty_when_all_present(self, small_database):
        assert small_database.missing_transactions([list(small_database[0])]) == Counter()


class TestQueries:
    def test_items(self, small_database):
        assert small_database.items() == {1, 2, 3, 4}

    def test_item_counts(self):
        database = TransactionDatabase([[1, 2], [2], [2, 3]])
        counts = database.item_counts()
        assert counts[2] == 3
        assert counts[1] == 1
        assert counts[3] == 1

    def test_count_itemset(self, small_database):
        assert small_database.count_itemset((1, 2)) == 5
        assert small_database.count_itemset((1, 2, 3)) == 3
        assert small_database.count_itemset((5,)) == 0

    def test_slice(self, small_database):
        head = small_database.slice(0, 3)
        assert len(head) == 3
        assert head[0] == small_database[0]

    def test_slice_to_end(self, small_database):
        tail = small_database.slice(7)
        assert len(tail) == 2

    def test_concatenate(self, small_database, small_increment):
        combined = small_database.concatenate(small_increment)
        assert len(combined) == len(small_database) + len(small_increment)
        assert combined[len(small_database)] == small_increment[0]

    def test_concatenate_does_not_mutate_inputs(self, small_database, small_increment):
        before = len(small_database)
        small_database.concatenate(small_increment)
        assert len(small_database) == before

    def test_transactions_view(self, small_database):
        assert len(small_database.transactions()) == 9

"""Unit tests for update batches and the update log."""

from __future__ import annotations

import pytest

from repro import TransactionDatabase, UpdateBatch, UpdateLog
from repro.errors import InvalidTransactionError, StaleStateError


class TestUpdateBatch:
    def test_from_iterables_canonicalises(self):
        batch = UpdateBatch.from_iterables(insertions=[[2, 1]], deletions=[[4, 3]])
        assert batch.insertions == ((1, 2),)
        assert batch.deletions == ((3, 4),)

    def test_from_iterables_validates(self):
        with pytest.raises(InvalidTransactionError):
            UpdateBatch.from_iterables(insertions=[[-1]])

    def test_insert_only_flag(self):
        batch = UpdateBatch.from_iterables(insertions=[[1]])
        assert batch.is_insert_only
        assert not batch.is_delete_only
        assert not batch.is_empty

    def test_delete_only_flag(self):
        batch = UpdateBatch.from_iterables(deletions=[[1]])
        assert batch.is_delete_only
        assert not batch.is_insert_only

    def test_mixed_batch_flags(self):
        batch = UpdateBatch.from_iterables(insertions=[[1]], deletions=[[2]])
        assert not batch.is_insert_only
        assert not batch.is_delete_only

    def test_empty_batch(self):
        batch = UpdateBatch()
        assert batch.is_empty
        assert len(batch) == 0

    def test_len_counts_both_sides(self):
        batch = UpdateBatch.from_iterables(insertions=[[1], [2]], deletions=[[3]])
        assert len(batch) == 3

    def test_insertions_database(self):
        batch = UpdateBatch.from_iterables(insertions=[[1, 2], [3]])
        database = batch.insertions_database()
        assert len(database) == 2
        assert database[0] == (1, 2)

    def test_deletions_database(self):
        batch = UpdateBatch.from_iterables(deletions=[[5]])
        assert list(batch.deletions_database()) == [(5,)]

    def test_label_is_kept(self):
        assert UpdateBatch.from_iterables(insertions=[[1]], label="day-1").label == "day-1"


class TestUpdateLog:
    def test_record_and_len(self):
        log = UpdateLog()
        log.record(UpdateBatch.from_iterables(insertions=[[1]]))
        log.record(UpdateBatch.from_iterables(deletions=[[2]]))
        assert len(log) == 2

    def test_totals(self):
        log = UpdateLog()
        log.record(UpdateBatch.from_iterables(insertions=[[1], [2]], deletions=[[3]]))
        log.record(UpdateBatch.from_iterables(insertions=[[4]]))
        assert log.total_insertions == 3
        assert log.total_deletions == 1

    def test_iteration_order(self):
        log = UpdateLog()
        first = UpdateBatch.from_iterables(insertions=[[1]], label="a")
        second = UpdateBatch.from_iterables(insertions=[[2]], label="b")
        log.record(first)
        log.record(second)
        assert [batch.label for batch in log] == ["a", "b"]

    def test_replay_reproduces_final_state(self):
        base = TransactionDatabase([[1, 2], [3]])
        log = UpdateLog()
        log.record(UpdateBatch.from_iterables(insertions=[[4, 5]]))
        log.record(UpdateBatch.from_iterables(deletions=[[3]]))
        replayed = log.replay(base)
        assert list(replayed) == [(1, 2), (4, 5)]

    def test_replay_does_not_mutate_base(self):
        base = TransactionDatabase([[1]])
        log = UpdateLog()
        log.record(UpdateBatch.from_iterables(deletions=[[1]]))
        log.replay(base)
        assert len(base) == 1

    def test_replay_against_wrong_base_fails_loudly(self):
        # The log deletes a transaction the base never held: strict replay
        # (the default) must raise instead of silently desyncing.
        log = UpdateLog()
        log.record(UpdateBatch.from_iterables(deletions=[[7, 8]]))
        with pytest.raises(StaleStateError, match=r"\(7, 8\)"):
            log.replay(TransactionDatabase([[1, 2]]))

    def test_replay_strictness_covers_mid_log_desync(self):
        # The phantom only becomes phantom after an earlier batch removed it.
        base = TransactionDatabase([[1, 2], [3]])
        log = UpdateLog()
        log.record(UpdateBatch.from_iterables(deletions=[[1, 2]]))
        log.record(UpdateBatch.from_iterables(deletions=[[1, 2]]))
        with pytest.raises(StaleStateError):
            log.replay(base)
        assert len(base) == 2

    def test_non_strict_replay_keeps_the_old_best_effort_semantics(self):
        log = UpdateLog()
        log.record(UpdateBatch.from_iterables(insertions=[[4]], deletions=[[7, 8]]))
        replayed = log.replay(TransactionDatabase([[1, 2]]), strict=False)
        assert list(replayed) == [(1, 2), (4,)]


class TestSerialization:
    def test_batch_round_trip(self):
        batch = UpdateBatch.from_iterables(
            insertions=[[2, 1], [3]], deletions=[[4]], label="day-9"
        )
        payload = batch.as_dict()
        assert payload == {
            "label": "day-9",
            "insertions": [[1, 2], [3]],
            "deletions": [[4]],
        }
        assert UpdateBatch.from_dict(payload) == batch

    def test_from_dict_validates_items(self):
        with pytest.raises(InvalidTransactionError):
            UpdateBatch.from_dict({"insertions": [[-3]], "deletions": []})

    def test_from_dict_tolerates_missing_keys(self):
        assert UpdateBatch.from_dict({}).is_empty

    def test_log_round_trip(self):
        log = UpdateLog()
        log.record(UpdateBatch.from_iterables(insertions=[[1]], label="a"))
        log.record(UpdateBatch.from_iterables(deletions=[[1]], label="b"))
        rebuilt = UpdateLog.from_dicts(log.as_dicts())
        assert rebuilt.batches == log.batches

"""Unit tests for update batches and the update log."""

from __future__ import annotations

import pytest

from repro import TransactionDatabase, UpdateBatch, UpdateLog
from repro.errors import InvalidTransactionError


class TestUpdateBatch:
    def test_from_iterables_canonicalises(self):
        batch = UpdateBatch.from_iterables(insertions=[[2, 1]], deletions=[[4, 3]])
        assert batch.insertions == ((1, 2),)
        assert batch.deletions == ((3, 4),)

    def test_from_iterables_validates(self):
        with pytest.raises(InvalidTransactionError):
            UpdateBatch.from_iterables(insertions=[[-1]])

    def test_insert_only_flag(self):
        batch = UpdateBatch.from_iterables(insertions=[[1]])
        assert batch.is_insert_only
        assert not batch.is_delete_only
        assert not batch.is_empty

    def test_delete_only_flag(self):
        batch = UpdateBatch.from_iterables(deletions=[[1]])
        assert batch.is_delete_only
        assert not batch.is_insert_only

    def test_mixed_batch_flags(self):
        batch = UpdateBatch.from_iterables(insertions=[[1]], deletions=[[2]])
        assert not batch.is_insert_only
        assert not batch.is_delete_only

    def test_empty_batch(self):
        batch = UpdateBatch()
        assert batch.is_empty
        assert len(batch) == 0

    def test_len_counts_both_sides(self):
        batch = UpdateBatch.from_iterables(insertions=[[1], [2]], deletions=[[3]])
        assert len(batch) == 3

    def test_insertions_database(self):
        batch = UpdateBatch.from_iterables(insertions=[[1, 2], [3]])
        database = batch.insertions_database()
        assert len(database) == 2
        assert database[0] == (1, 2)

    def test_deletions_database(self):
        batch = UpdateBatch.from_iterables(deletions=[[5]])
        assert list(batch.deletions_database()) == [(5,)]

    def test_label_is_kept(self):
        assert UpdateBatch.from_iterables(insertions=[[1]], label="day-1").label == "day-1"


class TestUpdateLog:
    def test_record_and_len(self):
        log = UpdateLog()
        log.record(UpdateBatch.from_iterables(insertions=[[1]]))
        log.record(UpdateBatch.from_iterables(deletions=[[2]]))
        assert len(log) == 2

    def test_totals(self):
        log = UpdateLog()
        log.record(UpdateBatch.from_iterables(insertions=[[1], [2]], deletions=[[3]]))
        log.record(UpdateBatch.from_iterables(insertions=[[4]]))
        assert log.total_insertions == 3
        assert log.total_deletions == 1

    def test_iteration_order(self):
        log = UpdateLog()
        first = UpdateBatch.from_iterables(insertions=[[1]], label="a")
        second = UpdateBatch.from_iterables(insertions=[[2]], label="b")
        log.record(first)
        log.record(second)
        assert [batch.label for batch in log] == ["a", "b"]

    def test_replay_reproduces_final_state(self):
        base = TransactionDatabase([[1, 2], [3]])
        log = UpdateLog()
        log.record(UpdateBatch.from_iterables(insertions=[[4, 5]]))
        log.record(UpdateBatch.from_iterables(deletions=[[3]]))
        replayed = log.replay(base)
        assert list(replayed) == [(1, 2), (4, 5)]

    def test_replay_does_not_mutate_base(self):
        base = TransactionDatabase([[1]])
        log = UpdateLog()
        log.record(UpdateBatch.from_iterables(deletions=[[1]]))
        log.replay(base)
        assert len(base) == 1

"""Unit tests for snapshot format v2 (memory-mappable) and its v1 bridge."""

from __future__ import annotations

import struct

import pytest

from repro import TransactionDatabase, load_database, save_database
from repro.db.store import (
    _V2_HEADER,
    _V2_HEADER_SIZE,
    _V2_MAGIC,
    inspect_snapshot,
    migrate_snapshot,
    open_snapshot,
    write_snapshot,
)
from repro.db.transaction_db import build_vertical_index
from repro.errors import StorageError
from repro.kernels import numpy_available


@pytest.fixture
def sample_database() -> TransactionDatabase:
    return TransactionDatabase(
        [[1, 2, 3], [5], [], [10, 20, 30, 40], [2, 3, 5]], name="sample"
    )


KERNELS = [None, "bigint"] + (["numpy"] if numpy_available() else [])


class TestRoundTrip:
    def test_transactions_round_trip(self, tmp_path, sample_database):
        path = tmp_path / "snap.v2"
        written = write_snapshot(sample_database, path)
        assert written == len(sample_database)
        reopened = open_snapshot(path)
        assert reopened.transactions() == sample_database.transactions()
        assert len(reopened) == len(sample_database)

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_lane_section_round_trips_under_every_kernel(
        self, tmp_path, sample_database, kernel
    ):
        sample_database.vertical()
        path = tmp_path / "snap.v2"
        write_snapshot(sample_database, path)
        reopened = open_snapshot(path, kernel=kernel)
        assert reopened.has_vertical_index
        assert dict(reopened.vertical()) == dict(sample_database.vertical())
        assert reopened.transactions() == sample_database.transactions()

    def test_include_lanes_defaults_to_index_presence(self, tmp_path, sample_database):
        bare = tmp_path / "bare.v2"
        write_snapshot(sample_database, bare)  # index never built
        assert not inspect_snapshot(bare).lanes_present

        sample_database.vertical()
        indexed = tmp_path / "indexed.v2"
        write_snapshot(sample_database, indexed)
        assert inspect_snapshot(indexed).lanes_present

    def test_include_lanes_true_forces_a_build(self, tmp_path, sample_database):
        path = tmp_path / "snap.v2"
        write_snapshot(sample_database, path, include_lanes=True)
        info = inspect_snapshot(path)
        assert info.lanes_present
        assert info.distinct_items == len(
            build_vertical_index(sample_database.transactions())
        )

    def test_empty_database(self, tmp_path):
        path = tmp_path / "empty.v2"
        write_snapshot(TransactionDatabase(), path, include_lanes=True)
        reopened = open_snapshot(path)
        assert len(reopened) == 0
        assert reopened.transactions() == []

    def test_name_defaults_to_file_stem(self, tmp_path, sample_database):
        path = tmp_path / "checkpoint.v2"
        write_snapshot(sample_database, path)
        assert open_snapshot(path).name == "checkpoint"
        assert open_snapshot(path, name="given").name == "given"


class TestLaziness:
    def test_open_defers_the_transaction_parse(self, tmp_path, sample_database):
        sample_database.vertical()
        path = tmp_path / "snap.v2"
        write_snapshot(sample_database, path)
        reopened = open_snapshot(path)
        assert not reopened.transactions_loaded
        # Size and vertical counting answer from the header and lanes alone.
        assert len(reopened) == len(sample_database)
        assert reopened.vertical().support((2, 3)) == 2
        assert not reopened.transactions_loaded
        # The first real row access materializes the transactions once.
        assert reopened.transactions() == sample_database.transactions()
        assert reopened.transactions_loaded


class TestFormatBridge:
    def test_load_database_sniffs_the_v2_magic(self, tmp_path, sample_database):
        path = tmp_path / "snap.v2"
        write_snapshot(sample_database, path)
        # Whatever the caller believes the format is, the magic wins.
        for binary in (False, True):
            loaded = load_database(path, binary=binary)
            assert loaded.transactions() == sample_database.transactions()

    def test_v1_snapshots_still_load_byte_exactly(self, tmp_path, sample_database):
        path = tmp_path / "snap.v1"
        save_database(sample_database, path, binary=True)
        before = path.read_bytes()
        loaded = load_database(path, binary=True)
        assert loaded.transactions() == sample_database.transactions()
        assert path.read_bytes() == before

    def test_load_database_sniffs_the_v1_binary_magic(self, tmp_path, sample_database):
        # A v1 binary file loads without the caller passing binary=True —
        # the CLI hands every database path to load_database unflagged.
        path = tmp_path / "snap.v1"
        save_database(sample_database, path, binary=True)
        loaded = load_database(path)
        assert loaded.transactions() == sample_database.transactions()

    def test_migrate_upgrades_v1_and_keeps_the_source(self, tmp_path, sample_database):
        v1 = tmp_path / "snap.v1"
        v2 = tmp_path / "snap.v2"
        save_database(sample_database, v1, binary=True)
        before = v1.read_bytes()
        info = migrate_snapshot(v1, v2)
        assert info.format_version == 2
        assert info.lanes_present  # the point of upgrading
        assert v1.read_bytes() == before
        assert open_snapshot(v2).transactions() == sample_database.transactions()

    def test_migrating_a_v2_snapshot_is_an_error(self, tmp_path, sample_database):
        v2 = tmp_path / "snap.v2"
        write_snapshot(sample_database, v2)
        with pytest.raises(StorageError, match="already snapshot format"):
            migrate_snapshot(v2, tmp_path / "other.v2")


class TestInspect:
    def test_inspect_v2_answers_from_the_header(self, tmp_path, sample_database):
        sample_database.vertical()
        path = tmp_path / "snap.v2"
        write_snapshot(sample_database, path)
        info = inspect_snapshot(path)
        assert info.format_version == 2
        assert info.transactions == len(sample_database)
        assert info.item_entries == sum(
            len(t) for t in sample_database.transactions()
        )
        assert info.distinct_items == len(dict(sample_database.vertical()))
        assert info.lane_words == 1
        assert info.byte_size == path.stat().st_size

    def test_inspect_v1_parses_the_stream(self, tmp_path, sample_database):
        path = tmp_path / "snap.v1"
        save_database(sample_database, path, binary=True)
        info = inspect_snapshot(path)
        assert info.format_version == 1
        assert info.transactions == len(sample_database)
        assert not info.lanes_present
        assert info.lane_words == 0

    def test_inspect_unknown_magic(self, tmp_path):
        path = tmp_path / "noise.bin"
        path.write_bytes(b"not a snapshot at all")
        with pytest.raises(StorageError, match="unknown magic"):
            inspect_snapshot(path)

    def test_inspect_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            inspect_snapshot(tmp_path / "absent.v2")


class TestCorruption:
    def _valid_bytes(self, tmp_path, sample_database) -> bytes:
        path = tmp_path / "snap.v2"
        sample_database.vertical()
        write_snapshot(sample_database, path)
        return path.read_bytes()

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "short.v2"
        path.write_bytes(_V2_MAGIC + b"\0" * 8)
        with pytest.raises(StorageError):
            open_snapshot(path)

    def test_unsupported_version(self, tmp_path, sample_database):
        data = bytearray(self._valid_bytes(tmp_path, sample_database))
        struct.pack_into("<I", data, len(_V2_MAGIC), 99)
        path = tmp_path / "future.v2"
        path.write_bytes(data)
        with pytest.raises(StorageError, match="unsupported snapshot version"):
            open_snapshot(path)

    def test_section_past_end_of_file(self, tmp_path, sample_database):
        data = self._valid_bytes(tmp_path, sample_database)
        path = tmp_path / "cut.v2"
        path.write_bytes(data[: _V2_HEADER_SIZE + 8])  # header survives, body gone
        with pytest.raises(StorageError, match="corrupt"):
            open_snapshot(path)

    def test_lane_words_too_narrow_for_the_transactions(
        self, tmp_path, sample_database
    ):
        data = bytearray(self._valid_bytes(tmp_path, sample_database))
        fields = list(_V2_HEADER.unpack_from(data, 0))
        fields[6] = 0  # lane_words: 0 words cannot cover 5 transactions
        _V2_HEADER.pack_into(data, 0, *fields)
        path = tmp_path / "narrow.v2"
        path.write_bytes(data)
        with pytest.raises(StorageError, match="lane words"):
            open_snapshot(path)

    def test_item_id_beyond_32_bits_refuses_to_write(self, tmp_path):
        database = TransactionDatabase([[1, 2**32]])
        with pytest.raises(StorageError, match="32-bit"):
            write_snapshot(database, tmp_path / "wide.v2")

"""Unit tests for the incrementally-maintained vertical index.

The contract under test: every delta operation leaves the index bit-for-bit
equal to :func:`repro.db.transaction_db.build_vertical_index` run from
scratch over the same transactions.  The Hypothesis interleavings in
``tests/property/test_vertical_index_properties.py`` hammer the same
invariant with random operation sequences; these tests pin down each
operation and edge case individually.
"""

from __future__ import annotations

import pytest

from repro import TransactionDatabase, VerticalIndex
from repro.db.transaction_db import build_vertical_index

ROWS = [(1, 2, 3), (1, 2), (2, 4), (), (1, 3), (2, 3, 4), (5,)]


def scratch(transactions) -> dict[int, int]:
    return build_vertical_index(list(transactions))


class TestBuildAndQueries:
    def test_build_matches_reference_builder(self):
        index = VerticalIndex.build(ROWS)
        assert dict(index) == scratch(ROWS)
        assert index.size == len(ROWS)

    def test_mapping_protocol(self):
        index = VerticalIndex.build([(1, 2), (2,), (1,)])
        assert index == {1: 0b101, 2: 0b011}
        assert index[1] == 0b101
        assert index.get(9) == 0
        assert 2 in index and 9 not in index
        assert sorted(index) == [1, 2]
        assert len(index) == 2

    def test_support_intersects_masks(self):
        index = VerticalIndex.build(ROWS)
        assert index.support((1, 2)) == 2
        assert index.support((2, 3, 4)) == 1
        assert index.support((9,)) == 0
        assert index.support((1, 9)) == 0
        assert index.support(()) == len(ROWS)  # empty itemset: in every transaction

    def test_item_counts_are_popcounts(self):
        index = VerticalIndex.build(ROWS)
        counts = index.item_counts()
        assert counts[2] == 4
        assert counts[5] == 1

    def test_empty_index(self):
        index = VerticalIndex()
        assert index.size == 0
        assert dict(index) == {}
        assert index.support((1,)) == 0

    def test_rejects_negative_size(self):
        with pytest.raises(ValueError):
            VerticalIndex(size=-1)


class TestDeltaMaintenance:
    def test_append(self):
        index = VerticalIndex.build(ROWS[:3])
        index.append((2, 5))
        assert dict(index) == scratch(ROWS[:3] + [(2, 5)])
        assert index.size == 4

    def test_extend(self):
        index = VerticalIndex.build(ROWS[:2])
        index.extend(ROWS[2:])
        assert dict(index) == scratch(ROWS)

    def test_extend_from_empty(self):
        index = VerticalIndex()
        index.extend(ROWS)
        assert dict(index) == scratch(ROWS)

    @pytest.mark.parametrize(
        "tids",
        [
            [0],  # first
            [len(ROWS) - 1],  # last
            [0, 1, 2],  # contiguous prefix (the sliding-window case)
            [2, 4],  # scattered
            [1, 3, 5],  # alternating
            list(range(len(ROWS))),  # everything
            [],  # nothing
        ],
    )
    def test_delete_tids_matches_scratch_rebuild(self, tids):
        index = VerticalIndex.build(ROWS)
        index.delete_tids(tids)
        survivors = [row for tid, row in enumerate(ROWS) if tid not in set(tids)]
        assert dict(index) == scratch(survivors)
        assert index.size == len(survivors)

    def test_delete_tids_drops_emptied_items(self):
        index = VerticalIndex.build([(1,), (2,)])
        index.delete_tids([1])
        assert 2 not in index  # no all-zero masks left behind

    def test_delete_tids_rejects_unsorted(self):
        index = VerticalIndex.build(ROWS)
        with pytest.raises(ValueError):
            index.delete_tids([3, 1])
        with pytest.raises(ValueError):
            index.delete_tids([2, 2])

    def test_delete_tids_rejects_out_of_range(self):
        index = VerticalIndex.build(ROWS)
        with pytest.raises(ValueError):
            index.delete_tids([len(ROWS)])


class TestDerivation:
    def test_copy_is_independent(self):
        index = VerticalIndex.build(ROWS)
        clone = index.copy()
        clone.append((8,))
        assert dict(index) == scratch(ROWS)
        assert dict(clone) == scratch(ROWS + [(8,)])

    def test_concatenate_shifts_other(self):
        left = VerticalIndex.build(ROWS[:3])
        right = VerticalIndex.build(ROWS[3:])
        assert dict(left.concatenate(right)) == scratch(ROWS)

    def test_concatenate_with_empty(self):
        index = VerticalIndex.build(ROWS)
        assert dict(index.concatenate(VerticalIndex())) == scratch(ROWS)
        assert dict(VerticalIndex().concatenate(index)) == scratch(ROWS)

    @pytest.mark.parametrize("start,stop", [(0, 3), (2, 6), (3, None), (0, 0), (5, 2)])
    def test_slice_matches_list_slicing(self, start, stop):
        index = VerticalIndex.build(ROWS)
        derived = index.slice(start, stop)
        assert dict(derived) == scratch(ROWS[start:stop])
        assert derived.size == len(ROWS[start:stop])


class TestDatabaseIntegration:
    """The database keeps its index current instead of rebuilding it."""

    def test_mutations_maintain_the_same_index_object(self):
        database = TransactionDatabase(ROWS)
        index = database.vertical()
        database.append([7, 8])
        database.extend([[8, 9], [1, 7]])
        database.remove_batch([[1, 2], [8, 9]])
        assert database.vertical() is index
        assert dict(index) == scratch(database.transactions())

    def test_mutations_before_first_use_stay_lazy(self):
        database = TransactionDatabase(ROWS)
        database.append([7])
        assert not database.has_vertical_index
        assert dict(database.vertical()) == scratch(database.transactions())

    def test_copy_inherits_the_index(self):
        database = TransactionDatabase(ROWS)
        database.vertical()
        clone = database.copy()
        assert clone.has_vertical_index
        clone.extend([[6, 7]])
        assert dict(clone.vertical()) == scratch(clone.transactions())
        assert dict(database.vertical()) == scratch(ROWS)

    def test_slice_derives_from_parent_masks(self):
        database = TransactionDatabase(ROWS)
        database.vertical()
        head = database.slice(0, 4)
        assert head.has_vertical_index
        assert dict(head.vertical()) == scratch(ROWS[:4])

    def test_partition_derives_and_caches_shards(self):
        database = TransactionDatabase(ROWS)
        database.vertical()
        shards = database.partition(3)
        assert all(shard.has_vertical_index for shard in shards)
        again = database.partition(3)
        assert [id(shard) for shard in shards] == [id(shard) for shard in again]
        database.append([1])
        refreshed = database.partition(3)
        assert [id(s) for s in refreshed] != [id(s) for s in shards]
        assert [t for shard in refreshed for t in shard] == list(database)

    def test_named_partitions_bypass_the_cache(self):
        database = TransactionDatabase(ROWS)
        first = database.partition(2, name="x")
        second = database.partition(2, name="x")
        assert [id(s) for s in first] != [id(s) for s in second]

    def test_concatenate_derives_when_left_index_is_built(self):
        left = TransactionDatabase(ROWS[:4])
        right = TransactionDatabase(ROWS[4:])
        left.vertical()
        combined = left.concatenate(right)
        assert combined.has_vertical_index
        assert dict(combined.vertical()) == scratch(ROWS)

    def test_concatenate_stays_lazy_without_a_left_index(self):
        left = TransactionDatabase(ROWS[:4])
        right = TransactionDatabase(ROWS[4:])
        combined = left.concatenate(right)
        assert not combined.has_vertical_index
        assert dict(combined.vertical()) == scratch(ROWS)

"""Unit tests for database statistics."""

from __future__ import annotations

import pytest

from repro import TransactionDatabase, compute_stats


class TestComputeStats:
    def test_empty_database(self):
        stats = compute_stats(TransactionDatabase())
        assert stats.transaction_count == 0
        assert stats.distinct_items == 0
        assert stats.mean_transaction_size == 0.0
        assert stats.min_transaction_size == 0
        assert stats.max_transaction_size == 0

    def test_counts(self, small_database):
        stats = compute_stats(small_database)
        assert stats.transaction_count == 9
        assert stats.distinct_items == 4
        assert stats.total_item_occurrences == sum(len(t) for t in small_database)

    def test_sizes(self):
        stats = compute_stats(TransactionDatabase([[1], [1, 2, 3], [4, 5]]))
        assert stats.min_transaction_size == 1
        assert stats.max_transaction_size == 3
        assert stats.mean_transaction_size == pytest.approx(2.0)

    def test_empty_transaction_counts_toward_minimum(self):
        stats = compute_stats(TransactionDatabase([[], [1, 2]]))
        assert stats.min_transaction_size == 0
        assert stats.transaction_count == 2

    def test_as_dict_round_trip(self, small_database):
        stats = compute_stats(small_database)
        as_dict = stats.as_dict()
        assert as_dict["transaction_count"] == stats.transaction_count
        assert as_dict["mean_transaction_size"] == stats.mean_transaction_size
        assert set(as_dict) == {
            "transaction_count",
            "distinct_items",
            "total_item_occurrences",
            "min_transaction_size",
            "max_transaction_size",
            "mean_transaction_size",
        }

"""Unit tests for the text and binary persistence formats."""

from __future__ import annotations

import struct

import pytest

from repro import TransactionDatabase, load_database, save_database
from repro.db.store import (
    _HEADER,
    read_transactions_binary,
    read_transactions_text,
    write_transactions_binary,
    write_transactions_text,
)
from repro.errors import StorageError


@pytest.fixture
def sample_database() -> TransactionDatabase:
    return TransactionDatabase([[1, 2, 3], [5], [], [10, 20, 30, 40]], name="sample")


class TestTextFormat:
    def test_round_trip(self, tmp_path, sample_database):
        path = tmp_path / "db.txt"
        written = write_transactions_text(path, sample_database.transactions())
        assert written == 4
        loaded = list(read_transactions_text(path))
        assert loaded == list(sample_database)

    def test_file_is_plain_integers(self, tmp_path, sample_database):
        path = tmp_path / "db.txt"
        write_transactions_text(path, sample_database.transactions())
        assert path.read_text().splitlines()[0] == "1 2 3"

    def test_empty_transaction_is_blank_line(self, tmp_path, sample_database):
        path = tmp_path / "db.txt"
        write_transactions_text(path, sample_database.transactions())
        assert path.read_text().splitlines()[2] == ""

    def test_read_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1 2\n3 four\n")
        with pytest.raises(StorageError):
            list(read_transactions_text(path))

    def test_read_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            list(read_transactions_text(tmp_path / "missing.txt"))

    def test_read_deduplicates_and_sorts(self, tmp_path):
        path = tmp_path / "db.txt"
        path.write_text("3 1 3 2\n")
        assert list(read_transactions_text(path)) == [(1, 2, 3)]

    def test_read_rejects_float_tokens(self, tmp_path):
        path = tmp_path / "floats.txt"
        path.write_text("1 2\n3 4.5\n")
        with pytest.raises(StorageError, match="non-integer"):
            list(read_transactions_text(path))

    def test_error_names_the_offending_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("1\n2\nx y\n")
        with pytest.raises(StorageError, match=":3:"):
            list(read_transactions_text(path))


class TestBinaryFormat:
    def test_round_trip(self, tmp_path, sample_database):
        path = tmp_path / "db.bin"
        written = write_transactions_binary(path, sample_database.transactions())
        assert written == 4
        loaded = list(read_transactions_binary(path))
        assert loaded == list(sample_database)

    def test_rejects_wrong_magic(self, tmp_path):
        path = tmp_path / "bad.bin"
        path.write_bytes(b"NOTADB\x00\x00")
        with pytest.raises(StorageError):
            list(read_transactions_binary(path))

    def test_rejects_truncated_file(self, tmp_path, sample_database):
        path = tmp_path / "db.bin"
        write_transactions_binary(path, sample_database.transactions())
        data = path.read_bytes()
        path.write_bytes(data[:-2])
        with pytest.raises(StorageError):
            list(read_transactions_binary(path))

    def test_read_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            list(read_transactions_binary(tmp_path / "missing.bin"))

    def test_rejects_truncated_header(self, tmp_path):
        path = tmp_path / "stub.bin"
        path.write_bytes(_HEADER[:4])
        with pytest.raises(StorageError):
            list(read_transactions_binary(path))

    def test_rejects_truncated_record_length(self, tmp_path, sample_database):
        path = tmp_path / "db.bin"
        write_transactions_binary(path, sample_database.transactions())
        # Cut inside a record's length field (2 bytes into the first record).
        path.write_bytes(path.read_bytes()[: len(_HEADER) + 2])
        with pytest.raises(StorageError):
            list(read_transactions_binary(path))

    def test_rejects_record_longer_than_file(self, tmp_path):
        path = tmp_path / "lying.bin"
        # A record claiming 100 items backed by a single one.
        path.write_bytes(_HEADER + struct.pack("<I", 100) + struct.pack("<I", 7))
        with pytest.raises(StorageError):
            list(read_transactions_binary(path))


class TestHighLevelHelpers:
    def test_save_and_load_text(self, tmp_path, sample_database):
        path = tmp_path / "db.txt"
        save_database(sample_database, path)
        loaded = load_database(path)
        assert list(loaded) == list(sample_database)
        assert loaded.name == "db"

    def test_save_and_load_binary(self, tmp_path, sample_database):
        path = tmp_path / "db.bin"
        save_database(sample_database, path, binary=True)
        loaded = load_database(path, binary=True)
        assert list(loaded) == list(sample_database)

    def test_load_with_explicit_name(self, tmp_path, sample_database):
        path = tmp_path / "db.txt"
        save_database(sample_database, path)
        assert load_database(path, name="renamed").name == "renamed"

    def test_formats_agree(self, tmp_path, sample_database):
        text_path = tmp_path / "db.txt"
        binary_path = tmp_path / "db.bin"
        save_database(sample_database, text_path)
        save_database(sample_database, binary_path, binary=True)
        assert list(load_database(text_path)) == list(load_database(binary_path, binary=True))
